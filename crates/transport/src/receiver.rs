//! TCP receiver: reassembly, cumulative ACKs, and reordering accounting.
//!
//! The receiver is deliberately simple — FlowBender's whole point is that
//! the receiver needs *no* changes. It tracks received byte ranges, emits
//! cumulative ACKs with a DCTCP-accurate ECN echo, and counts out-of-order
//! arrivals for the §4.2.3 statistic.
//!
//! Two acknowledgment modes:
//!
//! * **per-packet** (default): every data segment triggers an ACK whose
//!   `ECE` mirrors that segment's CE bit — the exact-echo configuration
//!   most DCTCP simulations use;
//! * **delayed** (`with_delack`): the DCTCP paper's receiver state
//!   machine — ACK every `m` in-order segments with `ECE` = the current CE
//!   state, but ACK *immediately* whenever the CE state flips (so the
//!   sender's marked-byte accounting stays exact), on any out-of-order
//!   arrival or hole-fill (so dupacks and recovery behave), and on FIN.
//!   A host-armed delayed-ACK timer flushes a pending ACK so the last
//!   sub-`m` segments of a window can't stall the sender.

use std::collections::BTreeMap;

use netsim::{Counter, Ctx, Flags, FlowId, FlowKey, Packet, SimTime};

/// Delayed-ACK configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelAckConfig {
    /// ACK every `every` in-order data segments (Linux: 2).
    pub every: u32,
    /// Flush a pending ACK after this long without further data.
    pub timeout: SimTime,
}

impl Default for DelAckConfig {
    fn default() -> Self {
        DelAckConfig {
            every: 2,
            timeout: SimTime::from_us(500),
        }
    }
}

/// Per-flow receive state.
#[derive(Debug)]
pub struct Receiver {
    flow: FlowId,
    /// Total application bytes this flow will carry.
    size: u64,
    /// Next expected in-order byte (the cumulative ACK value).
    expected: u64,
    /// Highest sequence number seen so far (for out-of-order accounting).
    max_seen: u64,
    /// Out-of-order byte ranges beyond `expected`: start -> end.
    ooo: BTreeMap<u64, u64>,
    /// Set once all `size` bytes have arrived.
    complete: bool,
    /// Data packets received (including duplicates).
    pkts_rcvd: u64,
    /// Packets that arrived out of order.
    ooo_rcvd: u64,
    /// Bytes received that were already present (spurious retransmits).
    dup_bytes: u64,
    /// Bytes currently buffered out of order (sum over `ooo` ranges).
    ooo_bytes: u64,
    /// Delayed-ACK mode, if enabled.
    delack: Option<DelAckConfig>,
    /// DCTCP receiver CE state (only meaningful with delayed ACKs).
    ce_state: bool,
    /// In-order segments received since the last ACK.
    pending: u32,
    /// Template for a deferred ACK: (key, vfield, tstamp, dsack).
    pending_ack: Option<(FlowKey, u8, SimTime, bool)>,
}

impl Receiver {
    /// Create receive state for a flow of `size` bytes.
    pub fn new(flow: FlowId, size: u64) -> Self {
        Receiver {
            flow,
            size,
            expected: 0,
            max_seen: 0,
            ooo: BTreeMap::new(),
            complete: false,
            pkts_rcvd: 0,
            ooo_rcvd: 0,
            dup_bytes: 0,
            ooo_bytes: 0,
            delack: None,
            ce_state: false,
            pending: 0,
            pending_ack: None,
        }
    }

    /// Enable DCTCP-style delayed ACKs.
    pub fn with_delack(mut self, cfg: DelAckConfig) -> Self {
        assert!(cfg.every >= 1, "delack count must be >= 1");
        self.delack = Some(cfg);
        self
    }

    /// True once every byte has arrived.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Next expected byte (current cumulative ACK).
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// Out-of-order arrivals so far.
    pub fn ooo_count(&self) -> u64 {
        self.ooo_rcvd
    }

    /// Handle an arriving data segment: update reassembly state, record
    /// completion if this was the last missing byte, and acknowledge.
    ///
    /// Returns `Some(deadline)` when a delayed-ACK timer must be armed for
    /// this flow (the host agent owns timers); `None` otherwise.
    pub fn on_data(&mut self, pkt: &Packet, ctx: &mut Ctx<'_>) -> Option<SimTime> {
        debug_assert!(!pkt.flags.has(Flags::ACK), "receiver got an ACK");
        self.pkts_rcvd += 1;
        ctx.recorder().bump(Counter::DataPktsRcvd);

        // §4.2.3 metric: a packet is out-of-order if a later sequence was
        // already seen when it arrives.
        let arrived_in_order = pkt.seq == self.expected;
        if pkt.seq < self.max_seen {
            self.ooo_rcvd += 1;
            ctx.recorder().bump(Counter::OooPktsRcvd);
        }
        self.max_seen = self.max_seen.max(pkt.seq);

        // DSACK: the segment is entirely data we already hold — the
        // sender's retransmission was spurious. Tell it so (Linux's DSACK).
        let end = pkt.seq + pkt.payload as u64;
        let duplicate = end <= self.expected || self.holds(pkt.seq, end);

        let expected_before = self.expected;
        let dup_before = self.dup_bytes;
        self.insert_range(pkt.seq, end);
        // A hole was filled if the cumulative point jumped past this
        // segment's own contribution.
        let filled_hole = self.expected > end.max(expected_before);

        // Reordering cost telemetry: wasted wire bytes and the reassembly
        // buffer's high-water mark (how much memory spraying costs the NIC).
        let dup_delta = self.dup_bytes - dup_before;
        if dup_delta > 0 {
            ctx.recorder().add(Counter::DupBytes, dup_delta);
        }
        ctx.recorder()
            .record_max(Counter::OooBytesMax, self.ooo_bytes);

        if !self.complete && self.expected >= self.size {
            self.complete = true;
            let now = ctx.now();
            ctx.recorder().flow_completed(self.flow, now);
        }

        let ce = pkt.flags.has(Flags::CE);
        let Some(cfg) = self.delack else {
            // Per-packet mode: ACK now, echoing this segment's CE bit and
            // — when the fabric stamps INT — the segment's per-hop
            // telemetry, so the sender's controller can blame a hop.
            // (Delayed-ACK mode coalesces segments and drops the stacks;
            // INT-driven schemes run per-packet ACKs.)
            let up_to = self.expected;
            let int = pkt.int.clone();
            self.emit_ack(
                pkt.key, pkt.vfield, pkt.tstamp, ce, duplicate, up_to, int, ctx,
            );
            return None;
        };

        // --- DCTCP delayed-ACK state machine ---
        let ce_flip = ce != self.ce_state;
        if ce_flip {
            // Acknowledge everything received under the old CE state first
            // (immediate ACK with the old echo, covering only bytes that
            // arrived *before* this segment), then switch state.
            if self.pending > 0 {
                let old = self.ce_state;
                if let Some((key, v, ts, ds)) = self.pending_ack.take() {
                    self.emit_ack(key, v, ts, old, ds, expected_before, None, ctx);
                }
                self.pending = 0;
            }
            self.ce_state = ce;
        }
        self.pending += 1;
        let dsack = duplicate || self.pending_ack.as_ref().is_some_and(|&(_, _, _, d)| d);
        self.pending_ack = Some((pkt.key, pkt.vfield, pkt.tstamp, dsack));

        let must_ack_now = !arrived_in_order          // dup-ACK or OOO
            || filled_hole                            // recovery progress
            || duplicate                              // DSACK must not wait
            || self.complete
            || pkt.flags.has(Flags::FIN)
            || self.pending >= cfg.every
            || ce_flip; // state already acked, but
                        // echo the new state promptly
        if must_ack_now {
            self.flush_ack(ctx);
            None
        } else {
            Some(ctx.now() + cfg.timeout)
        }
    }

    /// Delayed-ACK timer fired: flush any pending ACK.
    pub fn on_delack_timer(&mut self, ctx: &mut Ctx<'_>) {
        if self.pending > 0 {
            self.flush_ack(ctx);
        }
    }

    fn flush_ack(&mut self, ctx: &mut Ctx<'_>) {
        if let Some((key, v, ts, dsack)) = self.pending_ack.take() {
            let ce = self.ce_state;
            let up_to = self.expected;
            self.emit_ack(key, v, ts, ce, dsack, up_to, None, ctx);
        }
        self.pending = 0;
    }

    /// Build and send one cumulative ACK at `ack_num`. `int` is the INT
    /// stack to echo back to the sender (per-packet mode only).
    #[allow(clippy::too_many_arguments)]
    fn emit_ack(
        &mut self,
        data_key: FlowKey,
        vfield: u8,
        tstamp: SimTime,
        ece: bool,
        dsack: bool,
        ack_num: u64,
        int: Option<Box<netsim::IntStack>>,
        ctx: &mut Ctx<'_>,
    ) {
        // The ACK mirrors the data packet's V-field; ACK paths are
        // load-balanced independently and carry negligible load.
        let mut ack = Packet::ack_packet(self.flow, data_key, vfield, ack_num, tstamp);
        if ece {
            ack.flags.set(Flags::ECE);
        }
        if dsack {
            ack.flags.set(Flags::DSACK);
        }
        ack.rcv_high = self.max_seen;
        ack.int = int;
        ctx.send(ack);
    }

    /// True if `[lo, hi)` is already fully covered by buffered OOO data.
    fn holds(&self, lo: u64, hi: u64) -> bool {
        self.ooo
            .range(..=lo)
            .next_back()
            .is_some_and(|(&s, &e)| s <= lo && e >= hi)
    }

    /// Merge `[lo, hi)` into the reassembly state and advance `expected`.
    fn insert_range(&mut self, lo: u64, hi: u64) {
        if hi <= self.expected {
            self.dup_bytes += hi - lo;
            return;
        }
        let lo = lo.max(self.expected);
        if lo > self.expected {
            // Out-of-order: stash, coalescing overlaps.
            let mut new_lo = lo;
            let mut new_hi = hi;
            // Absorb any stored range that overlaps or touches [lo, hi).
            let overlapping: Vec<u64> = self
                .ooo
                .range(..=new_hi)
                .filter(|&(_, &e)| e >= new_lo)
                .map(|(&s, _)| s)
                .collect();
            for s in overlapping {
                let e = self.ooo.remove(&s).expect("key just seen");
                self.ooo_bytes -= e - s;
                new_lo = new_lo.min(s);
                new_hi = new_hi.max(e);
            }
            self.ooo.insert(new_lo, new_hi);
            self.ooo_bytes += new_hi - new_lo;
            return;
        }
        // In-order: advance, then drain any now-contiguous stashed ranges.
        self.expected = hi;
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if s > self.expected {
                break;
            }
            self.ooo.remove(&s);
            self.ooo_bytes -= e - s;
            if e > self.expected {
                self.expected = e;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive insert_range directly (the ctx-dependent path is covered by
    /// the integration tests).
    fn rx(size: u64) -> Receiver {
        Receiver::new(0, size)
    }

    #[test]
    fn in_order_advances() {
        let mut r = rx(3000);
        r.insert_range(0, 1000);
        assert_eq!(r.expected(), 1000);
        r.insert_range(1000, 2000);
        assert_eq!(r.expected(), 2000);
        r.insert_range(2000, 3000);
        assert_eq!(r.expected(), 3000);
    }

    #[test]
    fn gap_holds_ack_then_drains() {
        let mut r = rx(3000);
        r.insert_range(1000, 2000); // gap at 0..1000
        assert_eq!(r.expected(), 0);
        r.insert_range(2000, 3000);
        assert_eq!(r.expected(), 0);
        r.insert_range(0, 1000); // fills the hole; everything drains
        assert_eq!(r.expected(), 3000);
        assert!(r.ooo.is_empty());
    }

    #[test]
    fn duplicate_data_is_counted_not_harmful() {
        let mut r = rx(2000);
        r.insert_range(0, 1000);
        r.insert_range(0, 1000);
        assert_eq!(r.expected(), 1000);
        assert_eq!(r.dup_bytes, 1000);
    }

    #[test]
    fn overlapping_ooo_ranges_coalesce() {
        let mut r = rx(10_000);
        r.insert_range(2000, 4000);
        r.insert_range(3000, 5000);
        r.insert_range(7000, 8000);
        assert_eq!(r.ooo.len(), 2);
        assert_eq!(r.ooo.get(&2000), Some(&5000));
        r.insert_range(0, 2000);
        assert_eq!(r.expected(), 5000);
        assert_eq!(r.ooo.len(), 1);
        r.insert_range(5000, 7000);
        assert_eq!(r.expected(), 8000);
        assert!(r.ooo.is_empty());
    }

    #[test]
    fn adjacent_ranges_merge() {
        let mut r = rx(10_000);
        r.insert_range(2000, 3000);
        r.insert_range(3000, 4000);
        assert_eq!(r.ooo.len(), 1);
        assert_eq!(r.ooo.get(&2000), Some(&4000));
    }

    #[test]
    fn ooo_occupancy_tracks_stash_coalesce_and_drain() {
        let mut r = rx(10_000);
        r.insert_range(2000, 4000);
        assert_eq!(r.ooo_bytes, 2000);
        r.insert_range(3000, 5000); // coalesces with 2000..4000
        assert_eq!(r.ooo_bytes, 3000);
        r.insert_range(7000, 8000);
        assert_eq!(r.ooo_bytes, 4000);
        r.insert_range(0, 2000); // fills the hole; 2000..5000 drains
        assert_eq!(r.expected(), 5000);
        assert_eq!(r.ooo_bytes, 1000);
        r.insert_range(5000, 7000);
        assert_eq!(r.expected(), 8000);
        assert_eq!(r.ooo_bytes, 0);
        // Fully-stale retransmit: counted as dup, no occupancy change.
        r.insert_range(0, 1000);
        assert_eq!(r.dup_bytes, 1000);
        assert_eq!(r.ooo_bytes, 0);
    }

    #[test]
    fn partial_overlap_with_expected_trims() {
        let mut r = rx(10_000);
        r.insert_range(0, 1500);
        // Retransmit covering old + new data.
        r.insert_range(1000, 2500);
        assert_eq!(r.expected(), 2500);
    }
}
