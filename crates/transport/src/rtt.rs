//! RTT estimation and RTO computation (RFC 6298 with a configurable floor).

use netsim::SimTime;

/// Jacobson/Karels smoothed RTT estimator.
///
/// `RTO = max(rto_min, SRTT + 4 * RTTVAR)`, doubled per consecutive timeout
/// (managed by the caller via [`RttEstimator::backoff`]).
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    rto_min: SimTime,
    rto_initial: SimTime,
    backoff_exp: u32,
}

const ALPHA: f64 = 1.0 / 8.0;
const BETA: f64 = 1.0 / 4.0;
/// Cap on the exponential backoff (2^6 = 64x).
const MAX_BACKOFF_EXP: u32 = 6;

impl RttEstimator {
    /// New estimator with no samples yet.
    pub fn new(rto_min: SimTime, rto_initial: SimTime) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: 0.0,
            rto_min,
            rto_initial,
            backoff_exp: 0,
        }
    }

    /// Incorporate a fresh RTT sample (timestamp-echo based, so valid even
    /// for retransmitted segments).
    pub fn sample(&mut self, rtt: SimTime) {
        let r = rtt.as_ps() as f64;
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                self.rttvar = (1.0 - BETA) * self.rttvar + BETA * (srtt - r).abs();
                self.srtt = Some((1.0 - ALPHA) * srtt + ALPHA * r);
            }
        }
        // A valid sample means the path is alive: reset backoff (Karn).
        self.backoff_exp = 0;
    }

    /// Current smoothed RTT, if any sample has been taken.
    pub fn srtt(&self) -> Option<SimTime> {
        self.srtt.map(|s| SimTime::from_ps(s as u64))
    }

    /// The base RTO (before backoff).
    pub fn base_rto(&self) -> SimTime {
        match self.srtt {
            None => self.rto_initial.max(self.rto_min),
            Some(srtt) => {
                let rto = srtt + 4.0 * self.rttvar;
                SimTime::from_ps(rto as u64).max(self.rto_min)
            }
        }
    }

    /// The RTO including exponential backoff.
    pub fn rto(&self) -> SimTime {
        self.base_rto().saturating_mul(1 << self.backoff_exp)
    }

    /// Double the RTO (called on each timeout), capped at 64x.
    pub fn backoff(&mut self) {
        if self.backoff_exp < MAX_BACKOFF_EXP {
            self.backoff_exp += 1;
        }
    }

    /// Current backoff exponent (for tests/diagnostics).
    pub fn backoff_exp(&self) -> u32 {
        self.backoff_exp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::new(SimTime::from_ms(10), SimTime::from_ms(10))
    }

    #[test]
    fn initial_rto_is_floor() {
        let e = est();
        assert_eq!(e.rto(), SimTime::from_ms(10));
        assert_eq!(e.srtt(), None);
    }

    #[test]
    fn first_sample_seeds_srtt() {
        let mut e = est();
        e.sample(SimTime::from_us(100));
        assert_eq!(e.srtt(), Some(SimTime::from_us(100)));
        // 100us + 4*50us = 300us, below the 10ms floor.
        assert_eq!(e.rto(), SimTime::from_ms(10));
    }

    #[test]
    fn large_rtts_raise_rto_above_floor() {
        let mut e = est();
        e.sample(SimTime::from_ms(20));
        // srtt=20ms, rttvar=10ms -> rto = 60ms.
        assert_eq!(e.rto(), SimTime::from_ms(60));
    }

    #[test]
    fn smoothing_converges() {
        let mut e = est();
        for _ in 0..200 {
            e.sample(SimTime::from_us(90));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_us_f64() - 90.0).abs() < 1.0, "srtt = {srtt}");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = est();
        assert_eq!(e.rto(), SimTime::from_ms(10));
        e.backoff();
        assert_eq!(e.rto(), SimTime::from_ms(20));
        e.backoff();
        assert_eq!(e.rto(), SimTime::from_ms(40));
        for _ in 0..20 {
            e.backoff();
        }
        assert_eq!(e.rto(), SimTime::from_ms(10 * 64));
        // A good sample resets the backoff.
        e.sample(SimTime::from_us(90));
        assert_eq!(e.rto(), SimTime::from_ms(10));
        assert_eq!(e.backoff_exp(), 0);
    }

    #[test]
    fn variance_tracks_jitter() {
        let mut e = est();
        e.sample(SimTime::from_ms(10));
        for _ in 0..50 {
            e.sample(SimTime::from_ms(5));
            e.sample(SimTime::from_ms(15));
        }
        // With +-5ms jitter around 10ms, RTO must be well above
        // srtt: at least srtt + 4 * (a few ms).
        assert!(e.rto() > SimTime::from_ms(20));
    }
}
