//! RTT estimation and RTO computation (RFC 6298 with a configurable floor).

use netsim::SimTime;

/// Jacobson/Karels smoothed RTT estimator.
///
/// `RTO = max(rto_min, SRTT + 4 * RTTVAR)`, doubled per consecutive timeout
/// (managed by the caller via [`RttEstimator::backoff`]).
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    rto_min: SimTime,
    rto_initial: SimTime,
    backoff_exp: u32,
}

const ALPHA: f64 = 1.0 / 8.0;
const BETA: f64 = 1.0 / 4.0;
/// Cap on the exponential backoff (2^6 = 64x).
const MAX_BACKOFF_EXP: u32 = 6;

/// Hard ceiling on any computed RTO, backoff included (the analogue of
/// Linux's `TCP_RTO_MAX` of 120 s). Two jobs: it bounds how long a sender
/// can go silent after repeated timeouts, and it keeps the sender's
/// deadline arithmetic (`now + rto()`) far away from [`SimTime`]
/// overflow even when a pathological srtt/rttvar would otherwise push
/// the f64→u64 picosecond conversion toward `u64::MAX` under 64x
/// backoff. This cap wins over `rto_min` if a configuration ever sets
/// the floor above it.
pub const RTO_MAX: SimTime = SimTime::from_secs(120);

impl RttEstimator {
    /// New estimator with no samples yet.
    pub fn new(rto_min: SimTime, rto_initial: SimTime) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: 0.0,
            rto_min,
            rto_initial,
            backoff_exp: 0,
        }
    }

    /// Incorporate a fresh RTT sample (timestamp-echo based, so valid even
    /// for retransmitted segments).
    pub fn sample(&mut self, rtt: SimTime) {
        let r = rtt.as_ps() as f64;
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                self.rttvar = (1.0 - BETA) * self.rttvar + BETA * (srtt - r).abs();
                self.srtt = Some((1.0 - ALPHA) * srtt + ALPHA * r);
            }
        }
        // A valid sample means the path is alive: reset backoff (Karn).
        self.backoff_exp = 0;
    }

    /// Current smoothed RTT, if any sample has been taken.
    pub fn srtt(&self) -> Option<SimTime> {
        self.srtt.map(|s| SimTime::from_ps(s as u64))
    }

    /// The base RTO (before backoff), clamped to `[rto_min, RTO_MAX]`.
    pub fn base_rto(&self) -> SimTime {
        let base = match self.srtt {
            None => self.rto_initial.max(self.rto_min),
            Some(srtt) => {
                // `as` saturates (u64::MAX for +inf, 0 for NaN/negative),
                // but guard explicitly so a poisoned estimator state maps
                // to the floor instead of whatever the cast picks.
                let rto = srtt + 4.0 * self.rttvar;
                let ps = if rto.is_finite() && rto > 0.0 {
                    rto as u64
                } else {
                    0
                };
                SimTime::from_ps(ps).max(self.rto_min)
            }
        };
        base.min(RTO_MAX)
    }

    /// The RTO including exponential backoff, clamped to [`RTO_MAX`].
    /// The cap guarantees the deadline `now + rto()` cannot overflow
    /// `SimTime` for any reachable simulation time.
    pub fn rto(&self) -> SimTime {
        self.base_rto()
            .saturating_mul(1 << self.backoff_exp)
            .min(RTO_MAX)
    }

    /// Double the RTO (called on each timeout), capped at 64x.
    pub fn backoff(&mut self) {
        if self.backoff_exp < MAX_BACKOFF_EXP {
            self.backoff_exp += 1;
        }
    }

    /// Current backoff exponent (for tests/diagnostics).
    pub fn backoff_exp(&self) -> u32 {
        self.backoff_exp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> RttEstimator {
        RttEstimator::new(SimTime::from_ms(10), SimTime::from_ms(10))
    }

    #[test]
    fn initial_rto_is_floor() {
        let e = est();
        assert_eq!(e.rto(), SimTime::from_ms(10));
        assert_eq!(e.srtt(), None);
    }

    #[test]
    fn first_sample_seeds_srtt() {
        let mut e = est();
        e.sample(SimTime::from_us(100));
        assert_eq!(e.srtt(), Some(SimTime::from_us(100)));
        // 100us + 4*50us = 300us, below the 10ms floor.
        assert_eq!(e.rto(), SimTime::from_ms(10));
    }

    #[test]
    fn large_rtts_raise_rto_above_floor() {
        let mut e = est();
        e.sample(SimTime::from_ms(20));
        // srtt=20ms, rttvar=10ms -> rto = 60ms.
        assert_eq!(e.rto(), SimTime::from_ms(60));
    }

    #[test]
    fn smoothing_converges() {
        let mut e = est();
        for _ in 0..200 {
            e.sample(SimTime::from_us(90));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_us_f64() - 90.0).abs() < 1.0, "srtt = {srtt}");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut e = est();
        assert_eq!(e.rto(), SimTime::from_ms(10));
        e.backoff();
        assert_eq!(e.rto(), SimTime::from_ms(20));
        e.backoff();
        assert_eq!(e.rto(), SimTime::from_ms(40));
        for _ in 0..20 {
            e.backoff();
        }
        assert_eq!(e.rto(), SimTime::from_ms(10 * 64));
        // A good sample resets the backoff.
        e.sample(SimTime::from_us(90));
        assert_eq!(e.rto(), SimTime::from_ms(10));
        assert_eq!(e.backoff_exp(), 0);
    }

    #[test]
    fn rto_is_capped_for_extreme_samples() {
        // Property-style sweep: no mix of absurd samples and maximal
        // backoff may push the RTO past the documented cap, and the
        // sender's deadline arithmetic must survive the result.
        let mut rng = netsim::DetRng::new(9, 9);
        let extremes = [
            SimTime::MAX,
            SimTime::from_ps(u64::MAX / 2),
            SimTime::from_secs(3_600),
            SimTime::from_ps(1),
            SimTime::ZERO,
        ];
        for trial in 0..200 {
            let mut e = est();
            for _ in 0..12 {
                let s = if rng.gen_f64() < 0.5 {
                    extremes[rng.gen_index(extremes.len())]
                } else {
                    SimTime::from_ps(rng.gen_range(1_000_000_000) as u64)
                };
                e.sample(s);
                for _ in 0..(rng.gen_range(8)) {
                    e.backoff();
                }
                let rto = e.rto();
                assert!(rto <= RTO_MAX, "trial {trial}: rto {rto} exceeds cap");
                assert!(rto >= SimTime::from_ms(10).min(RTO_MAX), "below floor");
                assert!(e.base_rto() <= RTO_MAX);
                // The deadline computed by `TcpSender::arm_timer` uses
                // unchecked addition; it must stay in range even late in
                // a 100-day simulated run (picosecond SimTime caps out
                // around 213 days).
                let late = SimTime::from_secs(100 * 24 * 3_600);
                assert!(late.checked_add(rto).is_some(), "deadline overflows");
            }
        }
    }

    #[test]
    fn huge_finite_samples_saturate_at_the_cap() {
        let mut e = est();
        e.sample(SimTime::MAX);
        assert_eq!(e.base_rto(), RTO_MAX);
        for _ in 0..10 {
            e.backoff();
        }
        assert_eq!(e.rto(), RTO_MAX);
        // Recovery: a sane sample brings the estimator back down after
        // enough smoothing (alpha = 1/8 decays the huge srtt).
        for _ in 0..2_000 {
            e.sample(SimTime::from_us(100));
        }
        assert_eq!(e.rto(), SimTime::from_ms(10));
    }

    #[test]
    fn variance_tracks_jitter() {
        let mut e = est();
        e.sample(SimTime::from_ms(10));
        for _ in 0..50 {
            e.sample(SimTime::from_ms(5));
            e.sample(SimTime::from_ms(15));
        }
        // With +-5ms jitter around 10ms, RTO must be well above
        // srtt: at least srtt + 4 * (a few ms).
        assert!(e.rto() > SimTime::from_ms(20));
    }
}
