//! TCP sender: New Reno congestion control, DCTCP, and FlowBender.
//!
//! One [`TcpSender`] per flow. The layering mirrors the paper's stack:
//!
//! * **New Reno** provides reliability and loss response: slow start,
//!   congestion avoidance, fast retransmit / fast recovery on three
//!   duplicate ACKs, go-back-N on retransmission timeout with exponential
//!   backoff (RTO_min = 10 ms, §4.2).
//! * **DCTCP** rides on the ECN echo: the sender estimates `alpha`, the
//!   smoothed fraction of marked bytes per window (`g` = 1/16), and scales
//!   cwnd by `1 - alpha/2` at most once per window when marks arrive.
//! * a **path controller** ([`flowbender::PathController`], chosen by
//!   [`TcpConfig::path`]) observes the same ACK stream: each
//!   congestion-window "round" doubles as its RTT epoch (both end when
//!   the cumulative ACK passes the epoch's starting `snd_nxt`), and every
//!   decision to change `V` immediately affects all future packets of the
//!   flow — including retransmissions, which is exactly what routes
//!   around failures. FlowBender is one such controller; the oblivious
//!   baselines run the no-op static controller, which never draws from
//!   the RNG and never reroutes.

use flowbender::{Decision, Feedback, FlowBender, PathController};
use netsim::{
    Counter, Ctx, Flags, FlowId, FlowKey, Packet, ProbeKind, SeriesKey, SimTime, TraceEvent,
};

use crate::config::TcpConfig;
use crate::rtt::RttEstimator;

/// Outcome of handling a timer for this sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerOutcome {
    /// The timer was stale or rearmed internally; nothing to do.
    Quiet,
    /// The sender still needs its retransmit timer armed at this time.
    Rearm(SimTime),
}

/// Per-flow TCP sender state machine.
#[derive(Debug)]
pub struct TcpSender {
    flow: FlowId,
    key: FlowKey,
    size: u64,
    cfg: TcpConfig,

    // --- New Reno ---
    snd_una: u64,
    snd_nxt: u64,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    /// In fast recovery until `snd_una` passes this point.
    recover: Option<u64>,
    rtt: RttEstimator,

    // --- Reordering resilience (Linux-style DSACK adaptation) ---
    /// Current duplicate-ACK threshold; starts at the configured value and
    /// grows when DSACKs prove that "losses" were reordering.
    reorder_threshold: u32,
    /// Value `reorder_threshold` started at (config floor possibly raised
    /// by the per-destination cache); RTO resets to this, not to the bare
    /// config value.
    initial_reorder: u32,
    /// cwnd/ssthresh at recovery entry, for DSACK-driven undo.
    undo: Option<(f64, f64)>,
    /// Highest `rcv_high` the receiver has reported (its max seq seen).
    peer_high: u64,

    // --- Retransmit timer (deadline-based; events may fire early and get
    // re-armed, so stale events are cheap) ---
    rto_deadline: Option<SimTime>,
    timer_pending: bool,

    // --- DCTCP ---
    alpha: f64,
    win_bytes_acked: u64,
    win_bytes_marked: u64,
    /// The RTT epoch/window ends when `snd_una` reaches this.
    window_end: u64,
    /// cwnd already reduced in this window.
    cwr: bool,
    /// When the first switch CN of the current window landed, before any
    /// ECN echo did. The first ECE ACK of the same window closes the
    /// measurement: `now - cn_at` is the lead time the switch feedback
    /// bought over the end-to-end echo ([`Counter::FeedbackLeadPs`]).
    cn_at: Option<SimTime>,

    // --- Path control ---
    ctrl: Box<dyn PathController>,
    /// ACKs at or below this sequence acknowledge data sent before the
    /// last reroute; they measure the *old* path and are hidden from the
    /// controller (otherwise every reroute would be judged by the path it
    /// just left and cascade into a second reroute).
    skip_until: u64,

    // --- Statistics ---
    retransmits: u64,
    timeouts: u64,
}

impl TcpSender {
    /// Create a sender for `size` bytes on `key`. The path controller is
    /// built from [`TcpConfig::path`]; controllers that randomize their
    /// initial `V` (FlowBender, flowcut) draw it from `ctx`'s RNG here.
    ///
    /// `cached_reorder` carries the host's per-destination reordering
    /// estimate (Linux `tcp_metrics` semantics): a fresh connection to a
    /// destination that recently exhibited reordering starts with the
    /// raised duplicate-ACK threshold instead of re-learning it through a
    /// spurious fast retransmit. `vhint` is the flow's initial-V hint from
    /// its [`netsim::FlowSpec`] (0 for ordinary flows; replication
    /// schemes pin their duplicates to other values).
    pub fn new(
        flow: FlowId,
        key: FlowKey,
        size: u64,
        cfg: TcpConfig,
        cached_reorder: Option<u32>,
        vhint: u8,
        ctx: &mut Ctx<'_>,
    ) -> Self {
        cfg.validate();
        let ctrl = cfg.path.build(vhint, ctx.rng());
        let cwnd = cfg.init_cwnd_bytes();
        let rtt = RttEstimator::new(cfg.rto_min, cfg.rto_initial);
        let reorder_threshold = match cfg.dupack_threshold {
            Some(base) => base.max(cached_reorder.unwrap_or(0)),
            None => 0,
        };
        TcpSender {
            flow,
            key,
            size,
            cfg,
            snd_una: 0,
            snd_nxt: 0,
            cwnd,
            ssthresh: f64::INFINITY,
            dup_acks: 0,
            recover: None,
            rtt,
            reorder_threshold,
            initial_reorder: reorder_threshold,
            undo: None,
            peer_high: 0,
            rto_deadline: None,
            timer_pending: false,
            // DCTCP initializes alpha conservatively to 1 so a young
            // flow's first congestion signal halves cwnd; the estimate
            // then converges to the true marking fraction within ~16
            // windows (g = 1/16).
            alpha: 1.0,
            win_bytes_acked: 0,
            win_bytes_marked: 0,
            window_end: 0,
            cwr: false,
            cn_at: None,
            ctrl,
            skip_until: 0,
            retransmits: 0,
            timeouts: 0,
        }
    }

    /// The flow is done: every byte has been cumulatively acknowledged.
    pub fn is_complete(&self) -> bool {
        self.snd_una >= self.size
    }

    /// Current congestion window in bytes (for tests/diagnostics).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current DCTCP `alpha` (for tests/diagnostics).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The FlowBender instance, if this sender's path controller is one.
    pub fn flowbender(&self) -> Option<&FlowBender> {
        self.ctrl.as_flowbender()
    }

    /// The path controller this sender runs.
    pub fn path_controller(&self) -> &dyn PathController {
        self.ctrl.as_ref()
    }

    /// Segments retransmitted so far.
    pub fn retransmit_count(&self) -> u64 {
        self.retransmits
    }

    /// Timeouts so far.
    pub fn timeout_count(&self) -> u64 {
        self.timeouts
    }

    /// The current reordering (duplicate-ACK) threshold, for persisting
    /// into the host's per-destination metrics cache.
    pub fn reorder_threshold(&self) -> u32 {
        self.reorder_threshold
    }

    /// Destination host of this flow.
    pub fn dst(&self) -> netsim::HostId {
        self.key.dst
    }

    /// The V-field for outgoing packets.
    fn vfield(&self) -> u8 {
        self.ctrl.vfield()
    }

    /// Bookkeeping shared by every reroute site: counter, the skip fence
    /// excluding old-path ACKs, and the V-field telemetry probe.
    fn note_reroute(&mut self, counter: Counter, ctx: &mut Ctx<'_>) {
        ctx.recorder().bump(counter);
        self.skip_until = self.snd_nxt;
        let (now, v) = (ctx.now(), self.ctrl.vfield());
        ctx.recorder()
            .probe(now, SeriesKey::Vfield { flow: self.flow }, v as f64);
    }

    /// Flight-recorder hook: one branch when this flow is untraced.
    #[inline]
    fn trace(&self, ev: TraceEvent, ctx: &mut Ctx<'_>) {
        if ctx.recorder().trace_wants(self.flow) {
            let now = ctx.now();
            ctx.recorder().trace_event(now, self.flow, ev);
        }
    }

    /// Record a path-controller reroute decision (old V → new V) in the
    /// flight recorder. `Stay` decisions are not recorded — they happen
    /// on every ACK and carry no information.
    #[inline]
    fn trace_decision(&self, d: Decision, ctx: &mut Ctx<'_>) {
        if let Decision::Reroute { from, to } = d {
            self.trace(
                TraceEvent::Decision {
                    from_v: from,
                    to_v: to,
                },
                ctx,
            );
        }
    }

    /// Flight-recorder shorthand for a congestion-window transition.
    #[inline]
    fn trace_cwnd(&self, ctx: &mut Ctx<'_>) {
        self.trace(
            TraceEvent::CwndChange {
                cwnd_bytes: self.cwnd as u64,
            },
            ctx,
        );
    }

    /// Start the flow: open the window and arm the timer. Returns the
    /// deadline the caller must arm a timer for, if any.
    pub fn start(&mut self, ctx: &mut Ctx<'_>) -> Option<SimTime> {
        if self.ctrl.active() {
            // Anchor the reroute trace: where did this flow start hashing?
            let (now, v) = (ctx.now(), self.ctrl.vfield());
            ctx.recorder()
                .probe(now, SeriesKey::Vfield { flow: self.flow }, v as f64);
        }
        self.transmit_window(ctx);
        // The first DCTCP/FlowBender epoch spans the initial window.
        self.window_end = self.snd_nxt.saturating_sub(1);
        self.arm_timer(ctx.now())
    }

    /// Send as much new data as the window allows (cwnd is additionally
    /// clamped by the receiver window `max_cwnd`).
    fn transmit_window(&mut self, ctx: &mut Ctx<'_>) {
        self.cwnd = self.cwnd.min(self.cfg.max_cwnd as f64);
        while self.snd_nxt < self.size && (self.snd_nxt - self.snd_una) < self.cwnd as u64 {
            let payload = (self.size - self.snd_nxt).min(self.cfg.mss as u64) as u32;
            self.send_segment(self.snd_nxt, payload, ctx);
            self.snd_nxt += payload as u64;
        }
    }

    fn send_segment(&mut self, seq: u64, payload: u32, ctx: &mut Ctx<'_>) {
        let mut pkt = Packet::data(self.flow, self.key, self.vfield(), seq, payload, ctx.now());
        if seq + payload as u64 >= self.size {
            pkt.flags.set(Flags::FIN);
        }
        ctx.send(pkt);
    }

    fn retransmit_una(&mut self, ctx: &mut Ctx<'_>) {
        let payload = (self.size - self.snd_una).min(self.cfg.mss as u64) as u32;
        self.retransmits += 1;
        ctx.recorder().bump(Counter::Retransmits);
        self.send_segment(self.snd_una, payload, ctx);
        if self.snd_nxt < self.snd_una + payload as u64 {
            self.snd_nxt = self.snd_una + payload as u64;
        }
    }

    /// Arm (or extend) the retransmit timer. Returns the deadline the agent
    /// must schedule, or `None` if a timer event is already pending.
    fn arm_timer(&mut self, now: SimTime) -> Option<SimTime> {
        if self.is_complete() {
            self.rto_deadline = None;
            return None;
        }
        let deadline = now + self.rtt.rto();
        self.rto_deadline = Some(deadline);
        if self.timer_pending {
            // An event is already in flight; it will re-arm on arrival.
            None
        } else {
            self.timer_pending = true;
            Some(deadline)
        }
    }

    /// Handle switch-originated feedback (a CN packet, routed here by the
    /// host agent) mid-RTT, without waiting for the ACK clock.
    ///
    /// Two independent reactions:
    ///
    /// * with [`TcpConfig::cn_fast_cc`], a DCTCP-style cwnd cut *now*,
    ///   sharing the once-per-window `cwr` gate with the ordinary ECN
    ///   echo — whichever signal arrives first cuts, the other is a no-op;
    /// * the path controller's [`PathController::on_feedback`] hook, so
    ///   feedback-aware controllers (Bender-INT) can reroute mid-window.
    pub fn on_feedback(&mut self, fb: Feedback, ctx: &mut Ctx<'_>) {
        if self.is_complete() {
            return;
        }
        if matches!(fb, Feedback::Cn { .. }) {
            // Open the lead-time measurement only if the echo for this
            // window hasn't already arrived (then the CN pre-empted
            // nothing) and no earlier CN opened it.
            if !self.cwr && self.cn_at.is_none() {
                self.cn_at = Some(ctx.now());
            }
            if self.cfg.cn_fast_cc && !self.cwr {
                if self.cfg.dctcp.is_some() {
                    self.cwnd *= 1.0 - self.alpha / 2.0;
                    self.cwnd = self.cwnd.max(self.cfg.mss as f64);
                    self.ssthresh = self.ssthresh.min(self.cwnd);
                    self.trace_cwnd(ctx);
                }
                self.cwr = true;
            }
        }
        let now_ps = ctx.now().as_ps();
        let d = self.ctrl.on_feedback(fb, now_ps, ctx.rng());
        if d.rerouted() {
            self.note_reroute(Counter::Reroutes, ctx);
            self.trace_decision(d, ctx);
        }
    }

    /// Handle an incoming cumulative ACK. Returns a timer deadline to arm,
    /// if the retransmit timer needs (re)scheduling.
    pub fn on_ack(&mut self, pkt: &Packet, ctx: &mut Ctx<'_>) -> Option<SimTime> {
        debug_assert!(pkt.flags.has(Flags::ACK));
        if self.is_complete() {
            return None;
        }
        let ack = pkt.ack;
        let ece = pkt.flags.has(Flags::ECE);
        ctx.recorder().bump(Counter::AcksRcvd);
        if ece {
            ctx.recorder().bump(Counter::MarkedAcksRcvd);
        }
        if ack > self.skip_until {
            let now_ps = ctx.now().as_ps();
            let d = self.ctrl.on_ack(ece, now_ps, ctx.rng());
            if d.rerouted() {
                // Mid-window reroute (gap-based controllers).
                self.note_reroute(Counter::Reroutes, ctx);
                self.trace_decision(d, ctx);
            }
            // INT echo: the receiver mirrored the data packet's per-hop
            // telemetry onto this ACK. Hand the deepest-queue hop to the
            // controller so it can bend away from the blamed port
            // (Bender-INT); oblivious controllers ignore it.
            if let Some(hop) = pkt.int.as_ref().and_then(|s| s.blamed_hop()) {
                let fb = Feedback::IntEcho {
                    node: hop.node,
                    port: hop.port,
                    qbytes: hop.qbytes,
                    marked: hop.marked,
                };
                let d = self.ctrl.on_feedback(fb, now_ps, ctx.rng());
                if d.rerouted() {
                    self.note_reroute(Counter::Reroutes, ctx);
                    self.trace_decision(d, ctx);
                }
            }
        }
        self.peer_high = self.peer_high.max(pkt.rcv_high);

        // Timestamp echo gives a valid sample even across retransmits.
        self.rtt.sample(ctx.now().saturating_sub(pkt.tstamp));

        // DSACK: a retransmission of ours was spurious — the "loss" was
        // reordering. Adapt like Linux: raise the reordering threshold to
        // cover the observed extent, and undo the recovery's cwnd damage.
        if pkt.flags.has(Flags::DSACK) {
            ctx.recorder().bump(Counter::DsacksRcvd);
            // Each DSACK names one retransmission of ours whose original
            // copy arrived after all.
            ctx.recorder().bump(Counter::SpuriousRetransmits);
            self.on_reordering_detected(ctx);
        }

        // Close the feedback-lead measurement: this is the first ECN echo
        // since a CN landed for the same window — the CN beat it by `lead`.
        if ece {
            if let Some(cn_time) = self.cn_at.take() {
                let lead = ctx.now().saturating_sub(cn_time);
                ctx.recorder().add(Counter::FeedbackLeadPs, lead.as_ps());
                ctx.recorder().bump(Counter::FeedbackLeadSamples);
            }
        }

        // DCTCP reduction: at most once per window, on the first ECN echo
        // (duplicate or not — reordering must not mask congestion).
        if ece && !self.cwr {
            if self.cfg.dctcp.is_some() {
                self.cwnd *= 1.0 - self.alpha / 2.0;
                self.cwnd = self.cwnd.max(self.cfg.mss as f64);
                // Keep ssthresh at the reduced level so growth continues
                // additively rather than re-entering slow start.
                self.ssthresh = self.ssthresh.min(self.cwnd);
                self.trace_cwnd(ctx);
            }
            self.cwr = true;
        }

        if ack > self.snd_una {
            self.on_new_ack(ack, ece, ctx);
        } else {
            self.on_dup_ack(ctx);
        }

        if self.is_complete() {
            self.rto_deadline = None;
            None
        } else {
            self.arm_timer(ctx.now())
        }
    }

    fn on_new_ack(&mut self, ack: u64, ece: bool, ctx: &mut Ctx<'_>) {
        let newly_acked = ack - self.snd_una;
        self.snd_una = ack;
        // After a go-back-N timeout rewinds snd_nxt, a cumulative ACK can
        // jump past it (the receiver already held later ranges); resume
        // sending from the ACK point.
        if self.snd_nxt < self.snd_una {
            self.snd_nxt = self.snd_una;
        }

        // --- DCTCP per-window accounting (the reduction itself happens in
        // `on_ack`, so echoes on duplicate ACKs also count) ---
        self.win_bytes_acked += newly_acked;
        if ece {
            self.win_bytes_marked += newly_acked;
        }

        // --- window/epoch boundary: alpha update + FlowBender RTT end ---
        if self.snd_una > self.window_end {
            let f = if self.win_bytes_acked > 0 {
                self.win_bytes_marked as f64 / self.win_bytes_acked as f64
            } else {
                0.0
            };
            if let Some(d) = self.cfg.dctcp {
                self.alpha = (1.0 - d.g) * self.alpha + d.g * f;
            }
            if ctx.recorder().wants(ProbeKind::Cwnd) {
                let (now, cwnd) = (ctx.now(), self.cwnd);
                ctx.recorder()
                    .probe(now, SeriesKey::Cwnd { flow: self.flow }, cwnd);
            }
            if ctx.recorder().wants(ProbeKind::FFraction) {
                let now = ctx.now();
                ctx.recorder()
                    .probe(now, SeriesKey::FFraction { flow: self.flow }, f);
            }
            self.win_bytes_acked = 0;
            self.win_bytes_marked = 0;
            self.cwr = false;
            // A CN whose window ended without any echo measured nothing.
            self.cn_at = None;
            self.window_end = self.snd_nxt;
            let d = self.ctrl.on_rtt_end(ctx.rng());
            if d.rerouted() {
                self.note_reroute(Counter::Reroutes, ctx);
                self.trace_decision(d, ctx);
            }
        }

        // --- New Reno recovery bookkeeping ---
        match self.recover {
            Some(recover) if ack >= recover => {
                // Full ACK: leave fast recovery.
                self.recover = None;
                self.undo = None;
                self.dup_acks = 0;
                self.cwnd = self.ssthresh.max(self.cfg.mss as f64);
                self.trace(TraceEvent::FastRetransmitExit, ctx);
                self.trace_cwnd(ctx);
            }
            Some(_) => {
                // Partial ACK: the next hole is lost too. Retransmit it and
                // deflate.
                self.retransmit_una(ctx);
                self.cwnd =
                    (self.cwnd - newly_acked as f64 + self.cfg.mss as f64).max(self.cfg.mss as f64);
            }
            None => {
                self.dup_acks = 0;
                // Normal growth.
                if self.cwnd < self.ssthresh {
                    self.cwnd += newly_acked.min(self.cfg.mss as u64) as f64;
                } else {
                    self.cwnd += (self.cfg.mss as f64) * (self.cfg.mss as f64) / self.cwnd;
                }
            }
        }

        self.transmit_window(ctx);
    }

    /// Reordering proven (DSACK): grow the dupack threshold to the extent
    /// the receiver has demonstrably seen past the hole, and undo the
    /// spurious recovery if one is in progress (Linux `tcp_undo_cwnd`).
    fn on_reordering_detected(&mut self, ctx: &mut Ctx<'_>) {
        if self.cfg.dupack_threshold.is_none() {
            return;
        }
        let extent =
            ((self.peer_high.saturating_sub(self.snd_una)) / self.cfg.mss as u64) as u32 + 1;
        const REORDER_CAP: u32 = 300; // Linux's default sysctl cap
                                      // Repeated DSACKs mean the estimate is still too low; grow
                                      // multiplicatively so persistent reordering (packet spraying)
                                      // converges in a few events.
        self.reorder_threshold = self
            .reorder_threshold
            .max(extent)
            .max(self.reorder_threshold * 2)
            .min(REORDER_CAP);
        if self.recover.is_some() {
            if let Some((cwnd, ssthresh)) = self.undo.take() {
                self.cwnd = cwnd;
                self.ssthresh = ssthresh;
                ctx.recorder().bump(Counter::DsackUndos);
                self.trace_cwnd(ctx);
            }
            self.recover = None;
            self.dup_acks = 0;
        }
    }

    fn on_dup_ack(&mut self, ctx: &mut Ctx<'_>) {
        ctx.recorder().bump(Counter::DupAcks);
        if self.recover.is_some() {
            // Inflate during recovery; each dup ACK signals a departure.
            self.cwnd += self.cfg.mss as f64;
            self.transmit_window(ctx);
            return;
        }
        if self.cfg.dupack_threshold.is_none() {
            return; // fast retransmit disabled (DeTail stack)
        }
        self.dup_acks += 1;
        if self.dup_acks >= self.reorder_threshold {
            // Enter fast retransmit / fast recovery.
            ctx.recorder().bump(Counter::FastRetransmits);
            self.recover = Some(self.snd_nxt);
            self.undo = Some((self.cwnd, self.ssthresh));
            self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.cfg.mss as f64);
            self.cwnd = self.ssthresh + 3.0 * self.cfg.mss as f64;
            self.dup_acks = 0;
            self.trace(TraceEvent::FastRetransmitEnter, ctx);
            self.trace_cwnd(ctx);
            self.retransmit_una(ctx);
        }
    }

    /// The retransmit timer event fired. Returns what the agent should do
    /// with the timer.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>) -> TimerOutcome {
        self.timer_pending = false;
        if self.is_complete() {
            return TimerOutcome::Quiet;
        }
        let Some(deadline) = self.rto_deadline else {
            return TimerOutcome::Quiet;
        };
        if ctx.now() < deadline {
            // ACKs pushed the deadline forward since this event was
            // scheduled; re-arm for the true deadline.
            self.timer_pending = true;
            return TimerOutcome::Rearm(deadline);
        }

        // --- Genuine retransmission timeout ---
        self.timeouts += 1;
        ctx.recorder().bump(Counter::Timeouts);
        self.ssthresh = (self.cwnd / 2.0).max(2.0 * self.cfg.mss as f64);
        self.cwnd = self.cfg.mss as f64;
        self.recover = None;
        self.undo = None;
        self.dup_acks = 0;
        // Linux resets its reordering estimate on RTO (to the cached
        // per-destination floor).
        self.reorder_threshold = self.initial_reorder;
        self.rtt.backoff();
        self.trace(
            TraceEvent::RtoFire {
                backoff_exp: self.rtt.backoff_exp(),
            },
            ctx,
        );
        self.trace_cwnd(ctx);

        // FlowBender §3.3.2: an RTO is the failure signal — reroute now.
        let d = self.ctrl.on_timeout(ctx.rng());
        if d.rerouted() {
            self.note_reroute(Counter::TimeoutReroutes, ctx);
            self.trace_decision(d, ctx);
        }

        // Go-back-N: resume sending from the hole.
        self.snd_nxt = self.snd_una;
        // Reset the DCTCP/FlowBender epoch to the fresh window.
        self.win_bytes_acked = 0;
        self.win_bytes_marked = 0;
        self.cwr = false;
        self.cn_at = None;
        self.window_end = self.snd_una;
        self.retransmits += 1;
        ctx.recorder().bump(Counter::Retransmits);
        let payload = (self.size - self.snd_una).min(self.cfg.mss as u64) as u32;
        self.send_segment(self.snd_una, payload, ctx);
        self.snd_nxt = self.snd_una + payload as u64;

        match self.arm_timer(ctx.now()) {
            Some(deadline) => TimerOutcome::Rearm(deadline),
            None => TimerOutcome::Quiet,
        }
    }
}

#[cfg(test)]
mod tests {
    //! The sender's protocol behaviour is primarily exercised end-to-end in
    //! the agent/integration tests; these unit tests cover the pure pieces
    //! reachable without a simulator context.

    use super::*;
    use crate::config::TcpConfig;

    #[test]
    fn timer_outcome_equality() {
        assert_eq!(TimerOutcome::Quiet, TimerOutcome::Quiet);
        assert_ne!(
            TimerOutcome::Quiet,
            TimerOutcome::Rearm(SimTime::from_ms(1))
        );
    }

    #[test]
    fn config_defaults_produce_ten_segment_window() {
        let cfg = TcpConfig::default();
        assert_eq!(cfg.init_cwnd_bytes() as u64, 14_600);
    }
}
