//! Constant-bit-rate UDP source (the §4.3.1 hotspot generator).
//!
//! A [`UdpSender`] emits MTU-sized datagrams at a fixed rate. It has no
//! congestion control, and by default never changes its V-field — which is
//! exactly why the paper uses it to pin an immovable 6 Gbps hotspot onto
//! one path and watch whether TCP traffic routes around it.
//!
//! The paper's §3.4.3 ("FlowBender beyond TCP") suggests the complement:
//! reorder-tolerant UDP applications can *spray* by re-drawing V at any
//! desired pace. [`UdpSender::with_spray`] enables that: the V-field is
//! re-drawn every `every` datagrams, spreading the stream over all paths
//! at burst granularity.

use netsim::{Ctx, FlowId, FlowKey, Packet, SimTime, MSS};

/// Rate-limited unreliable sender.
#[derive(Debug)]
pub struct UdpSender {
    flow: FlowId,
    key: FlowKey,
    /// Current V-field (fixed unless spraying is enabled).
    vfield: u8,
    /// Re-draw V every this many datagrams (0 = never).
    spray_every: u64,
    /// Number of distinct V values to draw from when spraying.
    v_range: u8,
    /// Gap between consecutive datagrams for the configured rate.
    gap: SimTime,
    /// Bytes remaining to send (`u64::MAX` = unbounded).
    remaining: u64,
    seq: u64,
    sent_pkts: u64,
}

impl UdpSender {
    /// Create a CBR source of `rate_bps`, sending MTU-sized datagrams.
    pub fn new(flow: FlowId, key: FlowKey, rate_bps: u64, total_bytes: u64) -> Self {
        assert!(rate_bps > 0);
        // One MTU (payload + header) per tick; the wire size determines
        // the spacing for the requested rate.
        let wire = (MSS + netsim::HEADER_BYTES) as u64;
        UdpSender {
            flow,
            key,
            vfield: 0,
            spray_every: 0,
            v_range: 8,
            gap: SimTime::serialization(wire, rate_bps),
            remaining: total_bytes,
            seq: 0,
            sent_pkts: 0,
        }
    }

    /// Enable §3.4.3 burst-level spraying: re-draw the V-field every
    /// `every` datagrams (1 = per-packet spraying).
    pub fn with_spray(mut self, every: u64) -> Self {
        self.spray_every = every;
        self
    }

    /// Datagrams sent so far.
    pub fn sent_pkts(&self) -> u64 {
        self.sent_pkts
    }

    /// Send the next datagram; returns when the following one is due, or
    /// `None` when the byte budget is exhausted.
    pub fn tick(&mut self, ctx: &mut Ctx<'_>) -> Option<SimTime> {
        if self.remaining == 0 {
            return None;
        }
        if self.spray_every > 0 && self.sent_pkts.is_multiple_of(self.spray_every) {
            self.vfield = ctx.rng().gen_range(self.v_range as u32) as u8;
        }
        let payload = (self.remaining.min(MSS as u64)) as u32;
        let pkt = Packet::data(
            self.flow,
            self.key,
            self.vfield,
            self.seq,
            payload,
            ctx.now(),
        );
        ctx.send(pkt);
        self.seq += payload as u64;
        self.sent_pkts += 1;
        self.remaining = self.remaining.saturating_sub(payload as u64);
        (self.remaining > 0).then(|| ctx.now() + self.gap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_matches_rate() {
        let key = FlowKey {
            src: 0,
            dst: 1,
            sport: 1,
            dport: 2,
            proto: netsim::Proto::Udp,
        };
        // 6 Gbps, 1500B frames: 2 us per frame.
        let u = UdpSender::new(0, key, 6_000_000_000, u64::MAX);
        assert_eq!(u.gap, SimTime::from_ns(2000));
    }
}
