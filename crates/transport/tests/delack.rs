//! Delayed-ACK (DCTCP receiver state machine) behaviour.

use netsim::{
    Counter, FlowSpec, HashConfig, LinkSpec, RoutingTable, SimTime, Simulator, SwitchConfig,
};
use transport::{install_agents, DelAckConfig, TcpConfig};

/// `n` sender hosts with one flow each into a single receiver.
fn run_star(n: u32, bytes: u64, cfg: TcpConfig, seed: u64) -> netsim::Recorder {
    let mut sim = Simulator::new(seed);
    let senders: Vec<_> = (0..n).map(|_| sim.add_host_default()).collect();
    let rx = sim.add_host_default();
    let sw = sim.add_switch(SwitchConfig::commodity(HashConfig::FiveTupleAndVField));
    for &s in &senders {
        sim.connect(s, sw, LinkSpec::host_10g());
    }
    sim.connect(rx, sw, LinkSpec::host_10g());
    let mut rt = RoutingTable::new(n as usize + 1);
    for i in 0..n {
        rt.set(i, vec![i as u16]);
    }
    rt.set(n, vec![n as u16]);
    sim.set_routes(sw, rt);
    let specs: Vec<FlowSpec> = (0..n)
        .map(|i| FlowSpec::tcp(i, i, n, bytes, SimTime::ZERO))
        .collect();
    install_agents(&mut sim, &specs, &cfg);
    sim.run_until(SimTime::from_secs(10));
    sim.into_recorder()
}

fn delack_cfg() -> TcpConfig {
    TcpConfig {
        delack: Some(DelAckConfig::default()),
        ..TcpConfig::default()
    }
}

#[test]
fn delayed_acks_roughly_halve_ack_volume() {
    let pp = run_star(1, 2_000_000, TcpConfig::default(), 3);
    let da = run_star(1, 2_000_000, delack_cfg(), 3);
    assert_eq!(pp.completed_count(), 1);
    assert_eq!(da.completed_count(), 1);
    let (a_pp, a_da) = (pp.get(Counter::AcksRcvd), da.get(Counter::AcksRcvd));
    assert!(
        a_da * 2 <= a_pp + a_pp / 4,
        "delack should ~halve ACKs: {a_da} vs {a_pp}"
    );
}

#[test]
fn delack_timer_prevents_tail_stall() {
    // A 3-segment flow: the last segment would sit un-ACKed without the
    // delayed-ACK timer; the flow must still finish in well under an RTO.
    let da = run_star(1, 4_000, delack_cfg(), 5);
    assert_eq!(da.completed_count(), 1);
    let fct = da.flows()[0].fct().unwrap();
    assert!(fct < SimTime::from_ms(2), "fct = {fct} (RTO stall?)");
    assert_eq!(da.get(Counter::Timeouts), 0);
}

#[test]
fn delack_does_not_change_completion_or_health_under_congestion() {
    // 8-way incast: marking is active; both ack modes must finish cleanly
    // with comparable completion times (CE-flip forces immediate echoes,
    // so DCTCP's control loop keeps working).
    let pp = run_star(8, 500_000, TcpConfig::default(), 7);
    let da = run_star(8, 500_000, delack_cfg(), 7);
    assert_eq!(pp.completed_count(), 8);
    assert_eq!(da.completed_count(), 8);
    assert!(
        da.get(Counter::MarkedAcksRcvd) > 0,
        "ECN echoes must survive delack"
    );
    let last = |r: &netsim::Recorder| {
        r.flows()
            .iter()
            .filter_map(|f| f.fct())
            .map(|t| t.as_secs_f64())
            .fold(0.0, f64::max)
    };
    let (l_pp, l_da) = (last(&pp), last(&da));
    assert!(
        l_da < l_pp * 1.3,
        "delack congestion handling degraded: {l_da} vs {l_pp}"
    );
}

#[test]
fn delack_with_flowbender_still_bends() {
    // FlowBender's F is a fraction of (now fewer) ACKs; the signal must
    // survive. Two colliding flows through one 10G path set -> reroutes.
    let mut sim = Simulator::new(11);
    let tb = topology::build_testbed(
        &mut sim,
        topology::TestbedParams {
            servers_per_tor: vec![4; 2],
            ..topology::TestbedParams::tiny()
        },
        SwitchConfig::commodity(HashConfig::FiveTupleAndVField),
    );
    let specs: Vec<FlowSpec> = (0..4)
        .map(|i| FlowSpec::tcp(i, i, 4 + i, 10_000_000, SimTime::ZERO))
        .collect();
    let cfg = TcpConfig {
        delack: Some(DelAckConfig::default()),
        ..TcpConfig::flowbender(flowbender::Config::default())
    };
    install_agents(&mut sim, &specs, &cfg);
    sim.run_until(SimTime::from_secs(10));
    let _ = tb;
    assert_eq!(sim.recorder().completed_count(), 4);
    assert!(
        sim.recorder().get(Counter::Reroutes) > 0,
        "FlowBender must still sense congestion through delayed ACKs"
    );
}
