//! End-to-end check of the DeTail host profile: `TcpConfig::detail()`
//! disables fast retransmit, because DeTail's per-packet adaptive fabric
//! reorders heavily and dup-ACK bursts are routine, not a loss signal.
//!
//! A lossy dumbbell makes the distinction observable end to end: real
//! drops generate genuine dup-ACK bursts, so the default stack enters
//! fast retransmit while the DeTail stack must never do so — it still
//! completes the flow, recovering through RTOs alone.

use netsim::{
    Counter, FaultPlan, FlowSpec, HashConfig, LinkSpec, RoutingTable, SimTime, Simulator,
    SwitchConfig,
};
use transport::{install_agents, TcpConfig};

/// One TCP flow across a single switch whose receiver-side port silently
/// loses `loss` of packets (gray loss, so cwnd keeps dup-ACK bursts
/// coming). Returns the recorder after the run.
fn lossy_dumbbell(cfg: &TcpConfig, loss: f64, seed: u64) -> netsim::Recorder {
    let mut sim = Simulator::new(seed);
    let h0 = sim.add_host_default();
    let h1 = sim.add_host_default();
    let sw = sim.add_switch(SwitchConfig::commodity(HashConfig::FiveTupleAndVField));
    sim.connect(h0, sw, LinkSpec::host_10g());
    sim.connect(h1, sw, LinkSpec::host_10g());
    let mut rt = RoutingTable::new(2);
    rt.set(0, vec![0]);
    rt.set(1, vec![1]);
    sim.set_routes(sw, rt);
    let mut plan = FaultPlan::new();
    plan.gray_loss(sw, 1, loss, SimTime::ZERO);
    sim.install_faults(&plan);
    let specs = vec![FlowSpec::tcp(0, 0, 1, 2_000_000, SimTime::ZERO)];
    install_agents(&mut sim, &specs, cfg);
    sim.run_until(SimTime::from_secs(30));
    sim.into_recorder()
}

#[test]
fn detail_profile_never_fast_retransmits_and_recovers_by_rto() {
    let detail = lossy_dumbbell(&TcpConfig::detail(), 0.02, 9);
    assert_eq!(
        detail.completed_count(),
        1,
        "the flow must still complete without fast retransmit"
    );
    // The fabric really dropped data and the receiver really dup-ACKed:
    // the ingredients of fast retransmit were all present...
    assert!(detail.get(Counter::DupAcks) >= 3, "no dup-ACK bursts seen");
    assert!(detail.get(Counter::Retransmits) > 0, "nothing was lost?");
    // ...but the DeTail profile must sit them out.
    assert_eq!(
        detail.get(Counter::FastRetransmits),
        0,
        "TcpConfig::detail() must disable fast retransmit"
    );
    // Every recovery therefore came from the retransmission timer.
    assert!(detail.get(Counter::Timeouts) > 0, "RTO recovery expected");
}

#[test]
fn default_profile_fast_retransmits_on_the_same_loss() {
    // Control: the identical scenario with the default stack does use
    // dup-ACK recovery, proving the dumbbell provokes it.
    let stock = lossy_dumbbell(&TcpConfig::default(), 0.02, 9);
    assert_eq!(stock.completed_count(), 1);
    assert!(
        stock.get(Counter::FastRetransmits) > 0,
        "the default stack should fast-retransmit under 2% gray loss"
    );
}
