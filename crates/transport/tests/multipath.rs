//! End-to-end behaviour of the full stack on multipath fabrics: does
//! FlowBender actually bend?

use flowbender as fb;
use netsim::{Counter, FlowSpec, HashConfig, SimTime, Simulator, SwitchConfig};
use topology::{build_testbed, TestbedParams};
use transport::{install_agents, TcpConfig};

/// Two ToRs, 4 paths between them (tiny testbed). `n` long flows from
/// ToR-0 hosts to ToR-1 hosts.
fn cross_tor_run(cfg: TcpConfig, n: u32, bytes: u64, seed: u64) -> (netsim::Recorder, SimTime) {
    let mut sim = Simulator::new(seed);
    let tb = build_testbed(
        &mut sim,
        TestbedParams {
            servers_per_tor: vec![8; 2],
            aggs: 4,
            ..TestbedParams::tiny()
        },
        SwitchConfig::commodity(HashConfig::FiveTupleAndVField),
    );
    let specs: Vec<FlowSpec> = (0..n)
        .map(|i| {
            let src = i % 8;
            let dst = 8 + (i % 8);
            FlowSpec::tcp(i, src, dst, bytes, SimTime::ZERO)
        })
        .collect();
    install_agents(&mut sim, &specs, &cfg);
    sim.run_until(SimTime::from_secs(30));
    let _ = tb;
    let now = sim
        .recorder()
        .flows()
        .iter()
        .filter_map(|f| f.fct())
        .max()
        .unwrap_or(SimTime::ZERO);
    (sim.into_recorder(), now)
}

#[test]
fn flowbender_reroutes_under_collision_and_improves_tail() {
    // 8 flows over 4 paths: ECMP will collide some of them. FlowBender
    // must (a) actually reroute, (b) not hurt completion, and (c) tighten
    // the max/mean FCT ratio versus plain ECMP (the paper's Table-1
    // "quality of load balancing" measure).
    let bytes = 20_000_000; // 20 MB each
    let (ecmp, _) = cross_tor_run(TcpConfig::default(), 8, bytes, 3);
    let (bender, _) = cross_tor_run(TcpConfig::flowbender(fb::Config::default()), 8, bytes, 3);

    assert_eq!(ecmp.completed_count(), 8);
    assert_eq!(bender.completed_count(), 8);
    assert!(
        bender.get(Counter::Reroutes) > 0,
        "FlowBender never rerouted"
    );

    let spread = |rec: &netsim::Recorder| {
        let fcts: Vec<f64> = rec
            .flows()
            .iter()
            .map(|f| f.fct().unwrap().as_secs_f64())
            .collect();
        let mean = fcts.iter().sum::<f64>() / fcts.len() as f64;
        let max = fcts.iter().cloned().fold(0.0, f64::max);
        (mean, max / mean)
    };
    let (ecmp_mean, ecmp_ratio) = spread(&ecmp);
    let (fb_mean, fb_ratio) = spread(&bender);
    // FlowBender must not be meaningfully slower on average and must have
    // a tighter (or equal) max/mean spread.
    assert!(
        fb_mean <= ecmp_mean * 1.10,
        "FlowBender mean {fb_mean} vs ECMP {ecmp_mean}"
    );
    assert!(
        fb_ratio <= ecmp_ratio + 0.05,
        "FlowBender spread {fb_ratio} vs ECMP {ecmp_ratio}"
    );
}

#[test]
fn flowbender_routes_around_link_failure_within_rto_scale() {
    // One long flow; at t=2ms one of the 4 ToR uplinks dies (whichever the
    // flow is on — we fail all four sequentially in separate runs and
    // check the flow always finishes; with plain ECMP the flow wedges
    // whenever its hashed path is the dead one).
    let bytes = 50_000_000;
    let mut bender_all_finish = true;
    let mut ecmp_wedged_somewhere = false;

    for dead_uplink in 0..4u16 {
        for (is_bender, cfg) in [
            (false, TcpConfig::default()),
            (true, TcpConfig::flowbender(fb::Config::default())),
        ] {
            let mut sim = Simulator::new(99);
            let tb = build_testbed(
                &mut sim,
                TestbedParams {
                    servers_per_tor: vec![2; 2],
                    aggs: 4,
                    ..TestbedParams::tiny()
                },
                SwitchConfig::commodity(HashConfig::FiveTupleAndVField),
            );
            let specs = vec![FlowSpec::tcp(0, 0, 2, bytes, SimTime::ZERO)];
            install_agents(&mut sim, &specs, &cfg);
            sim.schedule_link_state(
                tb.tors[0],
                tb.tor_uplinks[0][dead_uplink as usize],
                false,
                SimTime::from_ms(2),
            );
            sim.run_until(SimTime::from_secs(20));
            let done = sim.recorder().completed_count() == 1;
            if is_bender {
                bender_all_finish &= done;
                if done {
                    let fct = sim.recorder().flows()[0].fct().unwrap();
                    // Even when its path died, recovery is RTO-scale: the
                    // whole 50MB flow (~40ms at line rate) still finishes promptly,
                    // not the seconds of a routing reconvergence.
                    assert!(fct < SimTime::from_secs(2), "fct = {fct}");
                }
            } else if !done {
                ecmp_wedged_somewhere = true;
            }
        }
    }
    assert!(
        bender_all_finish,
        "FlowBender must survive any single uplink failure"
    );
    assert!(
        ecmp_wedged_somewhere,
        "test vacuous: ECMP never hashed onto the failed link in any variant"
    );
}

#[test]
fn detail_stack_is_lossless_and_completes() {
    // DeTail switches (adaptive + PFC) with fast retransmit disabled:
    // heavy cross-ToR load must complete without a single queue drop.
    let mut sim = Simulator::new(17);
    let _tb = build_testbed(
        &mut sim,
        TestbedParams {
            servers_per_tor: vec![8; 2],
            aggs: 4,
            ..TestbedParams::tiny()
        },
        SwitchConfig::detail(),
    );
    let specs: Vec<FlowSpec> = (0..16)
        .map(|i| FlowSpec::tcp(i, i % 8, 8 + ((i + 3) % 8), 2_000_000, SimTime::ZERO))
        .collect();
    install_agents(&mut sim, &specs, &TcpConfig::detail());
    sim.run_until(SimTime::from_secs(30));
    assert_eq!(sim.recorder().completed_count(), 16);
    assert_eq!(
        sim.recorder().get(Counter::QueueDrops),
        0,
        "PFC fabric must be lossless"
    );
    assert!(
        sim.recorder().get(Counter::PfcPauses) > 0,
        "expected PFC activity under load"
    );
    // Per-packet adaptive routing reorders heavily.
    assert!(sim.recorder().get(Counter::OooPktsRcvd) > 0);
}

#[test]
fn rps_sprays_and_reorders() {
    let mut sim = Simulator::new(23);
    let _tb = build_testbed(
        &mut sim,
        TestbedParams {
            servers_per_tor: vec![4; 2],
            aggs: 4,
            ..TestbedParams::tiny()
        },
        SwitchConfig::rps(),
    );
    // Use the dupack-threshold-30 stack so spraying-induced reordering
    // doesn't trigger spurious fast retransmits (the paper's testbed
    // re-check); RPS evaluations in the paper still use 3 — both complete.
    let cfg = TcpConfig {
        dupack_threshold: Some(30),
        ..TcpConfig::default()
    };
    let specs: Vec<FlowSpec> = (0..4)
        .map(|i| FlowSpec::tcp(i, i, 4 + i, 5_000_000, SimTime::ZERO))
        .collect();
    install_agents(&mut sim, &specs, &cfg);
    sim.run_until(SimTime::from_secs(30));
    assert_eq!(sim.recorder().completed_count(), 4);
    let data = sim.recorder().get(Counter::DataPktsRcvd);
    let ooo = sim.recorder().get(Counter::OooPktsRcvd);
    assert!(
        ooo > data / 100,
        "RPS should reorder noticeably: {ooo}/{data}"
    );
}

#[test]
fn ecmp_without_vfield_ignores_bending() {
    // Control experiment: if switches hash only the 5-tuple, changing V
    // does nothing — FlowBender still "reroutes" but paths never change,
    // so colliding flows stay collided. We check it runs and completes
    // (the scheme degrades to ECMP, not to breakage).
    let mut sim = Simulator::new(31);
    let _tb = build_testbed(
        &mut sim,
        TestbedParams {
            servers_per_tor: vec![4; 2],
            aggs: 4,
            ..TestbedParams::tiny()
        },
        SwitchConfig::commodity(HashConfig::FiveTuple),
    );
    let specs: Vec<FlowSpec> = (0..4)
        .map(|i| FlowSpec::tcp(i, i, 4 + i, 2_000_000, SimTime::ZERO))
        .collect();
    install_agents(
        &mut sim,
        &specs,
        &TcpConfig::flowbender(fb::Config::default()),
    );
    sim.run_until(SimTime::from_secs(30));
    assert_eq!(sim.recorder().completed_count(), 4);
}
