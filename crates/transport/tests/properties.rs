//! Randomized tests of the transport's pure components: the receiver's
//! reassembly (against a bitmap reference model) and the RTT estimator.
//! Arrival orders are generated from seeded [`DetRng`] streams so every
//! failure reproduces exactly.

use netsim::{
    DetRng, FlowKey, HashConfig, LinkSpec, Packet, Proto, RoutingTable, SimTime, Simulator,
    SwitchConfig,
};
use transport::{Receiver, RttEstimator};

/// Drive a real `Receiver` inside a minimal simulation so it has a `Ctx`:
/// one host delivers a scripted segment arrival order to another.
struct Replay {
    segments: Vec<(u64, u32)>, // (seq, len) in arrival order
    rx: Option<Receiver>,
    size: u64,
    /// Echo of receiver state after each delivery: (expected, complete).
    pub log: std::rc::Rc<std::cell::RefCell<Vec<(u64, bool, bool)>>>,
}

impl netsim::Agent for Replay {
    fn on_start(&mut self, ctx: &mut netsim::Ctx<'_>) {
        // Feed all scripted segments directly to the receiver.
        let mut rx = self.rx.take().expect("receiver present");
        let key = FlowKey {
            src: 1,
            dst: 0,
            sport: 5,
            dport: 6,
            proto: Proto::Tcp,
        };
        for &(seq, len) in &self.segments {
            let pkt = Packet::data(0, key, 0, seq, len, ctx.now());
            rx.on_data(&pkt, ctx);
            self.log
                .borrow_mut()
                .push((rx.expected(), rx.is_complete(), false));
        }
        let _ = self.size;
        self.rx = Some(rx);
    }
    fn on_packet(&mut self, _pkt: Packet, _ctx: &mut netsim::Ctx<'_>) {}
    fn on_timer(&mut self, _token: u64, _ctx: &mut netsim::Ctx<'_>) {}
}

/// Run a scripted arrival order through a real Receiver; returns the state
/// log and the number of ACKs emitted (captured by the peer).
fn replay(size: u64, segments: Vec<(u64, u32)>) -> (Vec<(u64, bool, bool)>, usize) {
    let mut sim = Simulator::new(1);
    let h0 = sim.add_host(SimTime::ZERO, SimTime::ZERO);
    let h1 = sim.add_host(SimTime::ZERO, SimTime::ZERO);
    let sw = sim.add_switch(SwitchConfig::commodity(HashConfig::FiveTuple));
    sim.connect(h0, sw, LinkSpec::host_10g());
    sim.connect(h1, sw, LinkSpec::host_10g());
    let mut rt = RoutingTable::new(2);
    rt.set(0, vec![0]);
    rt.set(1, vec![1]);
    sim.set_routes(sw, rt);
    // Register the flow so completion can be recorded.
    sim.recorder_mut().flow_started(netsim::FlowRecord {
        flow: 0,
        src: 1,
        dst: 0,
        bytes: size,
        start: SimTime::ZERO,
        end: SimTime::MAX,
        job: None,
        proto: Proto::Tcp,
    });
    let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let replay = Replay {
        segments,
        rx: Some(Receiver::new(0, size)),
        size,
        log: log.clone(),
    };
    // Count ACKs at the peer.
    let acks = netsim::testutil::RxLog::shared();
    sim.set_agent(h0, Box::new(replay));
    sim.set_agent(
        h1,
        Box::new(netsim::testutil::CountingSink { log: acks.clone() }),
    );
    sim.run_to_quiescence();
    let n_acks = acks.borrow().arrivals.len();
    let out = log.borrow().clone();
    (out, n_acks)
}

/// Segment a flow into `n` MSS-sized pieces, append some duplicates, and
/// shuffle the lot (Fisher–Yates on `rng`).
fn arrival_order(rng: &mut DetRng, max_segs: usize) -> (u64, Vec<(u64, u32)>) {
    let n = 1 + rng.gen_index(max_segs - 1);
    let size = n as u64 * 1000;
    let base: Vec<(u64, u32)> = (0..n).map(|i| (i as u64 * 1000, 1000u32)).collect();
    let mut all = base.clone();
    let n_dups = rng.gen_index(n + 1);
    for _ in 0..n_dups {
        all.push(base[rng.gen_index(n)]);
    }
    for i in (1..all.len()).rev() {
        all.swap(i, rng.gen_index(i + 1));
    }
    (size, all)
}

/// Whatever the arrival order (including duplicates):
/// * `expected` is monotone non-decreasing,
/// * one cumulative ACK is emitted per arriving segment,
/// * the flow completes exactly once every byte has arrived.
#[test]
fn reassembly_matches_bitmap_model() {
    for seed in 0..60u64 {
        let mut rng = DetRng::new(seed, 0x20);
        let (size, order) = arrival_order(&mut rng, 40);
        let (log, n_acks) = replay(size, order.clone());
        assert_eq!(n_acks, order.len(), "seed {seed}: one ACK per data segment");
        let mut covered = vec![false; (size / 1000) as usize];
        let mut prev_expected = 0;
        for (i, &(seq, len)) in order.iter().enumerate() {
            for b in (seq / 1000)..((seq + len as u64) / 1000) {
                covered[b as usize] = true;
            }
            // Model: expected = first uncovered byte.
            let model_expected = covered
                .iter()
                .position(|&c| !c)
                .map(|p| p as u64 * 1000)
                .unwrap_or(size);
            let (expected, complete, _) = log[i];
            assert_eq!(expected, model_expected, "seed {seed}: at arrival {i}");
            assert!(expected >= prev_expected, "seed {seed}: ACK went backwards");
            prev_expected = expected;
            assert_eq!(complete, model_expected >= size, "seed {seed}");
        }
        // All segments present at least once -> must be complete.
        assert!(log.last().unwrap().1, "seed {seed}: flow never completed");
    }
}

/// RTO is always >= the floor, and SRTT stays within the sample range.
#[test]
fn rtt_estimator_bounds() {
    for seed in 0..60u64 {
        let mut rng = DetRng::new(seed, 0x21);
        let n = 1 + rng.gen_index(200);
        let floor = SimTime::from_ms(10);
        let mut est = RttEstimator::new(floor, floor);
        let mut lo = u64::MAX;
        let mut hi = 0;
        for _ in 0..n {
            let s = 1 + rng.gen_range(999_999) as u64;
            est.sample(SimTime::from_ns(s));
            lo = lo.min(s);
            hi = hi.max(s);
            assert!(est.rto() >= floor, "seed {seed}");
            let srtt = est.srtt().unwrap().as_ps();
            assert!(srtt >= SimTime::from_ns(lo).as_ps(), "seed {seed}");
            assert!(srtt <= SimTime::from_ns(hi).as_ps(), "seed {seed}");
        }
    }
}

/// Backoff multiplies the RTO monotonically and caps.
#[test]
fn rtt_backoff_is_monotone() {
    for n_backoffs in 0u32..12 {
        let floor = SimTime::from_ms(10);
        let mut est = RttEstimator::new(floor, floor);
        let mut prev = est.rto();
        for _ in 0..n_backoffs {
            est.backoff();
            let now = est.rto();
            assert!(now >= prev);
            assert!(now <= floor.saturating_mul(64));
            prev = now;
        }
    }
}
