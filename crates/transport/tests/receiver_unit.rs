//! Direct unit tests of the receiver — per-packet and delayed-ACK modes —
//! through a [`netsim::testutil::CtxHarness`].

use netsim::testutil::CtxHarness;
use netsim::{Counter, Flags, FlowKey, FlowRecord, Packet, Proto, SimTime, MSS};
use transport::{DelAckConfig, Receiver};

fn key() -> FlowKey {
    FlowKey {
        src: 1,
        dst: 0,
        sport: 7,
        dport: 8,
        proto: Proto::Tcp,
    }
}

fn data(seq: u64, ce: bool) -> Packet {
    let mut p = Packet::data(0, key(), 0, seq, MSS, SimTime::ZERO);
    if ce {
        p.flags.set(Flags::CE);
    }
    p
}

fn register(h: &mut CtxHarness, size: u64) {
    h.recorder_mut().flow_started(FlowRecord {
        flow: 0,
        src: 1,
        dst: 0,
        bytes: size,
        start: SimTime::ZERO,
        end: SimTime::MAX,
        job: None,
        proto: Proto::Tcp,
    });
}

#[test]
fn per_packet_mode_acks_every_segment_with_exact_echo() {
    let mut h = CtxHarness::new(1);
    register(&mut h, 10 * MSS as u64);
    let mut rx = Receiver::new(0, 10 * MSS as u64);
    for (i, ce) in [false, true, false, true].iter().enumerate() {
        let mut ctx = h.ctx();
        let r = rx.on_data(&data(i as u64 * MSS as u64, *ce), &mut ctx);
        assert_eq!(r, None, "per-packet mode never needs a delack timer");
    }
    let (pkts, _) = h.drain();
    assert_eq!(pkts.len(), 4);
    let eces: Vec<bool> = pkts.iter().map(|p| p.flags.has(Flags::ECE)).collect();
    assert_eq!(
        eces,
        vec![false, true, false, true],
        "echo must be exact per packet"
    );
    assert_eq!(pkts[3].ack, 4 * MSS as u64);
}

#[test]
fn delack_coalesces_pairs_and_arms_timer_on_odd_tail() {
    let mut h = CtxHarness::new(1);
    register(&mut h, 100 * MSS as u64);
    let mut rx = Receiver::new(0, 100 * MSS as u64).with_delack(DelAckConfig::default());
    // Segments 0,1 -> one ACK; segment 2 -> pending + timer request.
    let needs = {
        let mut ctx = h.ctx();
        let a = rx.on_data(&data(0, false), &mut ctx);
        let b = rx.on_data(&data(MSS as u64, false), &mut ctx);
        let c = rx.on_data(&data(2 * MSS as u64, false), &mut ctx);
        assert!(a.is_some(), "first of a pair waits (timer armed)");
        assert!(b.is_none(), "second of a pair acks immediately");
        (c, ())
    };
    assert!(needs.0.is_some(), "odd tail must request a delack timer");
    let (pkts, _) = h.drain();
    assert_eq!(pkts.len(), 1, "only the pair has been acked");
    assert_eq!(pkts[0].ack, 2 * MSS as u64);
    // Timer fires: the tail is flushed.
    {
        let mut ctx = h.ctx();
        rx.on_delack_timer(&mut ctx);
    }
    let (pkts, _) = h.drain();
    assert_eq!(pkts.len(), 1);
    assert_eq!(pkts[0].ack, 3 * MSS as u64);
    // A stale timer with nothing pending is a no-op.
    {
        let mut ctx = h.ctx();
        rx.on_delack_timer(&mut ctx);
    }
    let (pkts, _) = h.drain();
    assert!(pkts.is_empty());
}

#[test]
fn delack_ce_state_change_forces_immediate_echo() {
    let mut h = CtxHarness::new(1);
    register(&mut h, 100 * MSS as u64);
    let mut rx = Receiver::new(0, 100 * MSS as u64).with_delack(DelAckConfig::default());
    // Unmarked segment (pending), then a marked one: the CE flip must
    // first flush the unmarked coverage with ECE=0, then ack the marked
    // segment with ECE=1 (DCTCP's exact byte accounting).
    {
        let mut ctx = h.ctx();
        rx.on_data(&data(0, false), &mut ctx);
        rx.on_data(&data(MSS as u64, true), &mut ctx);
    }
    let (pkts, _) = h.drain();
    assert_eq!(
        pkts.len(),
        2,
        "CE flip yields two ACKs: old state, then new"
    );
    assert!(!pkts[0].flags.has(Flags::ECE));
    assert_eq!(pkts[0].ack, MSS as u64);
    assert!(pkts[1].flags.has(Flags::ECE));
    assert_eq!(pkts[1].ack, 2 * MSS as u64);
}

#[test]
fn delack_out_of_order_acks_immediately() {
    let mut h = CtxHarness::new(1);
    register(&mut h, 100 * MSS as u64);
    let mut rx = Receiver::new(0, 100 * MSS as u64).with_delack(DelAckConfig::default());
    {
        let mut ctx = h.ctx();
        // Segment 1 arrives before segment 0: immediate dup-ACK.
        let r = rx.on_data(&data(MSS as u64, false), &mut ctx);
        assert!(r.is_none(), "OOO must not be delayed");
    }
    let (pkts, _) = h.drain();
    assert_eq!(pkts.len(), 1);
    assert_eq!(pkts[0].ack, 0, "dup-ACK at the hole");
    // The hole-filler is also immediate (recovery progress).
    {
        let mut ctx = h.ctx();
        let r = rx.on_data(&data(0, false), &mut ctx);
        assert!(r.is_none());
    }
    let (pkts, _) = h.drain();
    assert_eq!(pkts.len(), 1);
    assert_eq!(pkts[0].ack, 2 * MSS as u64);
}

#[test]
fn completion_is_recorded_once_regardless_of_mode() {
    for delack in [false, true] {
        let mut h = CtxHarness::new(1);
        register(&mut h, 2 * MSS as u64);
        let mut rx = Receiver::new(0, 2 * MSS as u64);
        if delack {
            rx = rx.with_delack(DelAckConfig::default());
        }
        h.now = SimTime::from_us(50);
        {
            let mut ctx = h.ctx();
            rx.on_data(&data(0, false), &mut ctx);
            rx.on_data(&data(MSS as u64, false), &mut ctx);
        }
        assert!(rx.is_complete());
        assert_eq!(h.recorder().completed_count(), 1);
        assert_eq!(h.recorder().flows()[0].end, SimTime::from_us(50));
    }
}

#[test]
fn dsack_survives_delayed_ack_coalescing() {
    // A deferred delayed-ACK is already pending when the duplicate lands:
    // the duplicate coalesces into that ACK, and the single emitted ACK
    // must still carry DSACK — it is the sender's only evidence that its
    // retransmission was spurious.
    let mut h = CtxHarness::new(1);
    register(&mut h, 100 * MSS as u64);
    let mut rx = Receiver::new(0, 100 * MSS as u64).with_delack(DelAckConfig {
        every: 4,
        ..DelAckConfig::default()
    });
    {
        let mut ctx = h.ctx();
        let r = rx.on_data(&data(0, false), &mut ctx);
        assert!(r.is_some(), "first of a quad must defer (timer armed)");
        let r = rx.on_data(&data(0, false), &mut ctx); // exact duplicate
        assert!(r.is_none(), "a duplicate must flush immediately");
    }
    let (pkts, _) = h.drain();
    assert_eq!(pkts.len(), 1, "duplicate coalesces into one ACK");
    assert!(
        pkts[0].flags.has(Flags::DSACK),
        "DSACK lost in delayed-ACK coalescing"
    );
    assert_eq!(pkts[0].ack, MSS as u64);
}

#[test]
fn dsack_survives_ce_flip_double_emit() {
    // The duplicate arrives with the CE bit flipped: the receiver first
    // flushes the old-state coverage, then acks the new state. The DSACK
    // must ride one of the two ACKs, not vanish between them.
    let mut h = CtxHarness::new(1);
    register(&mut h, 100 * MSS as u64);
    let mut rx = Receiver::new(0, 100 * MSS as u64).with_delack(DelAckConfig {
        every: 4,
        ..DelAckConfig::default()
    });
    {
        let mut ctx = h.ctx();
        rx.on_data(&data(0, false), &mut ctx);
        rx.on_data(&data(0, true), &mut ctx); // duplicate + CE flip
    }
    let (pkts, _) = h.drain();
    assert_eq!(pkts.len(), 2, "CE flip emits old state then new");
    assert!(
        pkts.iter().any(|p| p.flags.has(Flags::DSACK)),
        "DSACK lost across the CE-flip double emit"
    );
}

#[test]
fn reordering_telemetry_tracks_dup_bytes_and_buffer_high_water() {
    let mut h = CtxHarness::new(1);
    register(&mut h, 100 * MSS as u64);
    let mut rx = Receiver::new(0, 100 * MSS as u64);
    {
        let mut ctx = h.ctx();
        // Two out-of-order segments stash in the reassembly buffer.
        rx.on_data(&data(2 * MSS as u64, false), &mut ctx);
        rx.on_data(&data(3 * MSS as u64, false), &mut ctx);
    }
    assert_eq!(h.recorder().get(Counter::OooBytesMax), 2 * MSS as u64);
    assert_eq!(h.recorder().get(Counter::DupBytes), 0);
    {
        let mut ctx = h.ctx();
        // Fill the hole: the buffer drains, but the high-water mark sticks.
        rx.on_data(&data(0, false), &mut ctx);
        rx.on_data(&data(MSS as u64, false), &mut ctx);
    }
    assert_eq!(
        h.recorder().get(Counter::OooBytesMax),
        2 * MSS as u64,
        "high-water mark must not decay when the buffer drains"
    );
    {
        let mut ctx = h.ctx();
        // A stale retransmit: pure duplicate wire bytes.
        rx.on_data(&data(0, false), &mut ctx);
    }
    assert_eq!(h.recorder().get(Counter::DupBytes), MSS as u64);
}

#[test]
fn dsack_is_flagged_in_both_modes() {
    for delack in [false, true] {
        let mut h = CtxHarness::new(1);
        register(&mut h, 100 * MSS as u64);
        let mut rx = Receiver::new(0, 100 * MSS as u64);
        if delack {
            rx = rx.with_delack(DelAckConfig::default());
        }
        {
            let mut ctx = h.ctx();
            rx.on_data(&data(0, false), &mut ctx);
            rx.on_data(&data(0, false), &mut ctx); // exact duplicate
        }
        let (pkts, _) = h.drain();
        assert!(
            pkts.iter().any(|p| p.flags.has(Flags::DSACK)),
            "duplicate data must produce a DSACK (delack={delack})"
        );
    }
}
