//! Direct unit tests of the TCP sender state machine, driven through a
//! [`netsim::testutil::CtxHarness`] — no network, just the protocol logic:
//! window growth, fast retransmit entry, DCTCP's alpha arithmetic, DSACK
//! undo, go-back-N timeouts, and FlowBender V-field stamping.

use netsim::testutil::CtxHarness;
use netsim::{Counter, Flags, FlowKey, Packet, Proto, SimTime, MSS};
use transport::{TcpConfig, TcpSender, TimerOutcome};

fn key() -> FlowKey {
    FlowKey {
        src: 0,
        dst: 1,
        sport: 1000,
        dport: 80,
        proto: Proto::Tcp,
    }
}

fn mk_sender(h: &mut CtxHarness, size: u64, cfg: TcpConfig) -> (TcpSender, Option<SimTime>) {
    let mut ctx = h.ctx();
    let mut s = TcpSender::new(0, key(), size, cfg, None, 0, &mut ctx);
    let deadline = s.start(&mut ctx);
    (s, deadline)
}

/// Build an ACK for the flow with the given cumulative number.
fn ack(num: u64, ece: bool, rcv_high: u64, now: SimTime) -> Packet {
    let mut a = Packet::ack_packet(0, key(), 0, num, now);
    if ece {
        a.flags.set(Flags::ECE);
    }
    a.rcv_high = rcv_high;
    a
}

fn dsack(num: u64, rcv_high: u64, now: SimTime) -> Packet {
    let mut a = ack(num, false, rcv_high, now);
    a.flags.set(Flags::DSACK);
    a
}

#[test]
fn initial_window_is_ten_segments() {
    let mut h = CtxHarness::new(1);
    let (_s, _) = mk_sender(&mut h, 10_000_000, TcpConfig::default());
    let (pkts, _) = h.drain();
    assert_eq!(pkts.len(), 10);
    for (i, p) in pkts.iter().enumerate() {
        assert_eq!(p.seq, i as u64 * MSS as u64);
        assert_eq!(p.payload, MSS);
        assert!(!p.flags.has(Flags::ACK));
    }
}

#[test]
fn slow_start_doubles_per_round() {
    let mut h = CtxHarness::new(1);
    let (mut s, _) = mk_sender(&mut h, 100_000_000, TcpConfig::default());
    let (first, _) = h.drain();
    assert_eq!(first.len(), 10);
    // ACK the whole initial window, one ACK per segment: each ACK grows
    // cwnd by one MSS and releases two new segments.
    h.now = SimTime::from_us(100);
    for i in 1..=10u64 {
        let mut ctx = h.ctx();
        s.on_ack(&ack(i * MSS as u64, false, 0, SimTime::ZERO), &mut ctx);
    }
    let (second, _) = h.drain();
    assert_eq!(second.len(), 20, "slow start should double the window");
    assert!((s.cwnd() - 20.0 * MSS as f64).abs() < 1.0);
}

#[test]
fn dctcp_reduction_uses_alpha_once_per_window() {
    let mut h = CtxHarness::new(1);
    let (mut s, _) = mk_sender(&mut h, 100_000_000, TcpConfig::default());
    h.drain();
    let w0 = s.cwnd();
    // alpha starts at 1.0: the first ECE halves cwnd exactly once even if
    // several marked ACKs arrive in the same window.
    h.now = SimTime::from_us(100);
    for i in 1..=3u64 {
        let mut ctx = h.ctx();
        s.on_ack(&ack(i * MSS as u64, true, 0, SimTime::ZERO), &mut ctx);
    }
    assert!(
        (s.cwnd() - w0 / 2.0).abs() < 2.0 * MSS as f64,
        "cwnd {} vs {}",
        s.cwnd(),
        w0
    );
    assert_eq!(
        s.alpha(),
        1.0,
        "alpha updates at the window boundary, not before"
    );
    // Complete the window: alpha EWMA moves toward the marked fraction.
    for i in 4..=10u64 {
        let mut ctx = h.ctx();
        s.on_ack(&ack(i * MSS as u64, false, 0, SimTime::ZERO), &mut ctx);
    }
    let expect = (1.0 - 1.0 / 16.0) * 1.0 + (1.0 / 16.0) * 0.3;
    assert!(
        (s.alpha() - expect).abs() < 1e-9,
        "alpha {} vs {}",
        s.alpha(),
        expect
    );
}

#[test]
fn three_dupacks_trigger_fast_retransmit() {
    let mut h = CtxHarness::new(1);
    let (mut s, _) = mk_sender(&mut h, 100_000_000, TcpConfig::default());
    h.drain();
    h.now = SimTime::from_us(100);
    // Segment 0 lost: dupacks at cumack 0 with growing rcv_high.
    for d in 1..=3u64 {
        let mut ctx = h.ctx();
        s.on_ack(&ack(0, false, d * MSS as u64, SimTime::ZERO), &mut ctx);
    }
    let (pkts, _) = h.drain();
    // Exactly one retransmission of the first segment.
    assert_eq!(pkts.len(), 1);
    assert_eq!(pkts[0].seq, 0);
    assert_eq!(s.retransmit_count(), 1);
}

#[test]
fn dsack_undoes_spurious_recovery_and_raises_threshold() {
    let mut h = CtxHarness::new(1);
    let (mut s, _) = mk_sender(&mut h, 100_000_000, TcpConfig::default());
    h.drain();
    h.now = SimTime::from_us(100);
    let w0 = s.cwnd();
    for d in 1..=3u64 {
        let mut ctx = h.ctx();
        s.on_ack(&ack(0, false, d * MSS as u64, SimTime::ZERO), &mut ctx);
    }
    assert!(s.cwnd() < w0, "recovery must have cut cwnd");
    // The "lost" segment was merely reordered: receiver reports the
    // retransmission as a duplicate, cumack jumps past the hole.
    {
        let mut ctx = h.ctx();
        s.on_ack(
            &dsack(4 * MSS as u64, 4 * MSS as u64, SimTime::ZERO),
            &mut ctx,
        );
    }
    assert!(
        s.reorder_threshold() > 3,
        "threshold must rise after DSACK: {}",
        s.reorder_threshold()
    );
    assert!(
        s.cwnd() >= w0 * 0.9,
        "undo must restore cwnd: {} vs {}",
        s.cwnd(),
        w0
    );
}

#[test]
fn dsack_bumps_spurious_retransmit_and_undo_counters() {
    let mut h = CtxHarness::new(1);
    let (mut s, _) = mk_sender(&mut h, 100_000_000, TcpConfig::default());
    h.drain();
    h.now = SimTime::from_us(100);
    // Enter fast retransmit on a reordered (not lost) segment.
    for d in 1..=3u64 {
        let mut ctx = h.ctx();
        s.on_ack(&ack(0, false, d * MSS as u64, SimTime::ZERO), &mut ctx);
    }
    assert_eq!(s.retransmit_count(), 1);
    assert_eq!(h.recorder().get(Counter::SpuriousRetransmits), 0);
    assert_eq!(h.recorder().get(Counter::DsackUndos), 0);
    // The receiver reports the retransmission as a duplicate: one spurious
    // retransmit, one undo.
    {
        let mut ctx = h.ctx();
        s.on_ack(
            &dsack(4 * MSS as u64, 4 * MSS as u64, SimTime::ZERO),
            &mut ctx,
        );
    }
    assert_eq!(h.recorder().get(Counter::DsacksRcvd), 1);
    assert_eq!(h.recorder().get(Counter::SpuriousRetransmits), 1);
    assert_eq!(h.recorder().get(Counter::DsackUndos), 1);
    // A further DSACK outside recovery is still a spurious retransmit but
    // has nothing to undo.
    {
        let mut ctx = h.ctx();
        s.on_ack(
            &dsack(5 * MSS as u64, 5 * MSS as u64, SimTime::ZERO),
            &mut ctx,
        );
    }
    assert_eq!(h.recorder().get(Counter::SpuriousRetransmits), 2);
    assert_eq!(h.recorder().get(Counter::DsackUndos), 1);
}

#[test]
fn reorder_threshold_adaptation_caps_at_300() {
    // Pathological spray: every ACK is a DSACK and the receiver's reported
    // extent is enormous. The Linux-style adaptation must converge to the
    // sysctl cap and stay there, never overshooting.
    let mut h = CtxHarness::new(7);
    let (mut s, _) = mk_sender(&mut h, 1_000_000_000, TcpConfig::default());
    h.drain();
    h.now = SimTime::from_us(100);
    let mut ack_num = 0u64;
    for round in 1..=20u64 {
        {
            let mut ctx = h.ctx();
            ack_num += MSS as u64;
            let high = round * 1000 * MSS as u64;
            s.on_ack(&dsack(ack_num, high, SimTime::ZERO), &mut ctx);
        }
        h.drain();
        assert!(
            s.reorder_threshold() <= 300,
            "threshold overshot the cap at round {round}: {}",
            s.reorder_threshold()
        );
    }
    assert_eq!(s.reorder_threshold(), 300, "cap must be reached and held");
}

#[test]
fn rto_goes_back_n_and_halves_to_one_segment() {
    let mut h = CtxHarness::new(1);
    let (mut s, deadline) = mk_sender(&mut h, 100_000_000, TcpConfig::default());
    // The sender hands the deadline to its agent (which owns timers).
    assert_eq!(
        deadline,
        Some(SimTime::from_ms(10)),
        "RTO_min deadline at start"
    );
    h.drain();
    // Fire the timer after the 10ms deadline: genuine RTO.
    h.now = SimTime::from_ms(11);
    let outcome = {
        let mut ctx = h.ctx();
        s.on_timer(&mut ctx)
    };
    assert!(matches!(outcome, TimerOutcome::Rearm(_)));
    assert_eq!(s.timeout_count(), 1);
    assert!(
        (s.cwnd() - MSS as f64).abs() < 1.0,
        "cwnd collapses to 1 MSS"
    );
    let (pkts, _) = h.drain();
    assert_eq!(pkts.len(), 1, "go-back-N: retransmit from snd_una only");
    assert_eq!(pkts[0].seq, 0);
}

#[test]
fn early_timer_rearms_quietly() {
    let mut h = CtxHarness::new(1);
    let (mut s, _) = mk_sender(&mut h, 1_000_000, TcpConfig::default());
    h.drain();
    // An ACK pushes the deadline forward... (echo = now, so the RTT
    // sample is ~0 and the RTO stays at the 10ms floor)
    h.now = SimTime::from_ms(5);
    {
        let now = h.now;
        let mut ctx = h.ctx();
        s.on_ack(&ack(MSS as u64, false, 0, now), &mut ctx);
    }
    // ...so the original timer event (armed for t=10ms, firing "now" at
    // 10ms while the true deadline is 15ms) must rearm, not RTO.
    h.now = SimTime::from_ms(10);
    let outcome = {
        let mut ctx = h.ctx();
        s.on_timer(&mut ctx)
    };
    match outcome {
        TimerOutcome::Rearm(deadline) => assert_eq!(deadline, SimTime::from_ms(15)),
        other => panic!("expected rearm, got {other:?}"),
    }
    assert_eq!(s.timeout_count(), 0);
}

#[test]
fn flowbender_vfield_changes_after_marked_window() {
    let mut h = CtxHarness::new(1);
    let cfg = TcpConfig::flowbender(flowbender::Config::default());
    let (mut s, _) = mk_sender(&mut h, 100_000_000, cfg);
    let (pkts, _) = h.drain();
    let v0 = pkts[0].vfield;
    assert!(pkts.iter().all(|p| p.vfield == v0), "one V per path epoch");
    // Fully-marked initial window: F = 100% > T, reroute at the boundary.
    h.now = SimTime::from_us(100);
    for i in 1..=10u64 {
        let mut ctx = h.ctx();
        s.on_ack(&ack(i * MSS as u64, true, 0, SimTime::ZERO), &mut ctx);
    }
    let (pkts, _) = h.drain();
    assert!(!pkts.is_empty());
    let v1 = pkts.last().unwrap().vfield;
    assert_ne!(v1, v0, "flow must have bent to a new V");
    assert_eq!(s.flowbender().unwrap().stats().congestion_reroutes, 1);
}

#[test]
fn completed_sender_ignores_stray_acks() {
    let mut h = CtxHarness::new(1);
    let (mut s, _) = mk_sender(&mut h, 2_000, TcpConfig::default());
    h.drain();
    {
        let mut ctx = h.ctx();
        s.on_ack(&ack(2_000, false, 0, SimTime::ZERO), &mut ctx);
    }
    assert!(s.is_complete());
    let before = s.retransmit_count();
    {
        let mut ctx = h.ctx();
        s.on_ack(&ack(2_000, false, 0, SimTime::ZERO), &mut ctx);
        let outcome = s.on_timer(&mut ctx);
        assert_eq!(outcome, TimerOutcome::Quiet);
    }
    assert_eq!(s.retransmit_count(), before);
    let (pkts, _) = h.drain();
    assert!(pkts.is_empty());
}

#[test]
fn fin_flag_set_on_last_segment_only() {
    let mut h = CtxHarness::new(1);
    let (_s, _) = mk_sender(&mut h, (3 * MSS) as u64, TcpConfig::default());
    let (pkts, _) = h.drain();
    assert_eq!(pkts.len(), 3);
    assert!(!pkts[0].flags.has(Flags::FIN));
    assert!(!pkts[1].flags.has(Flags::FIN));
    assert!(pkts[2].flags.has(Flags::FIN));
}

#[test]
fn cached_reorder_metric_raises_initial_threshold() {
    let mut h = CtxHarness::new(1);
    let mut ctx = h.ctx();
    let s = TcpSender::new(
        0,
        key(),
        1_000_000,
        TcpConfig::default(),
        Some(40),
        0,
        &mut ctx,
    );
    assert_eq!(
        s.reorder_threshold(),
        40,
        "per-destination cache must seed the threshold"
    );
    let s2 = TcpSender::new(1, key(), 1_000_000, TcpConfig::default(), None, 0, &mut ctx);
    assert_eq!(s2.reorder_threshold(), 3);
}
