//! §3.4.3 extension ("FlowBender beyond TCP"): a UDP source that re-draws
//! its V-field spreads across all equal-cost paths, while a default UDP
//! source stays pinned to one.

use netsim::{FlowSpec, HashConfig, SimTime, Simulator, SwitchConfig};
use topology::{build_testbed, TestbedParams};
use transport::{install_agents, TcpConfig};

/// Run one 4 Gbps UDP flow across the tiny testbed's 4 paths; return the
/// per-uplink UDP byte counts at the sending ToR.
fn uplink_udp_bytes(spray_every: u64) -> Vec<u64> {
    let mut sim = Simulator::new(77);
    let tb = build_testbed(
        &mut sim,
        TestbedParams::tiny(),
        SwitchConfig::commodity(HashConfig::FiveTupleAndVField),
    );
    let dst = tb.hosts_of_tor(1).start as u32;
    let mut spec = FlowSpec::udp(0, 0, dst, 4_000_000_000, SimTime::ZERO);
    if spray_every > 0 {
        spec = spec.with_udp_spray(spray_every);
    }
    install_agents(&mut sim, &[spec], &TcpConfig::default());
    sim.run_until(SimTime::from_ms(20));
    (0..4)
        .map(|a| {
            sim.port_stats(tb.tors[0], tb.tor_uplinks[0][a])
                .tx_bytes_udp
        })
        .collect()
}

#[test]
fn pinned_udp_uses_exactly_one_path() {
    let bytes = uplink_udp_bytes(0);
    let used = bytes.iter().filter(|&&b| b > 0).count();
    assert_eq!(used, 1, "pinned UDP must stay on one path: {bytes:?}");
}

#[test]
fn sprayed_udp_spreads_over_all_paths() {
    // Re-draw V every 16 datagrams: with 8 V values over 4 paths and
    // ~1600 packets in 20ms, every path must carry a meaningful share.
    let bytes = uplink_udp_bytes(16);
    let total: u64 = bytes.iter().sum();
    assert!(total > 5_000_000, "too little traffic: {total}");
    for (i, &b) in bytes.iter().enumerate() {
        let share = b as f64 / total as f64;
        assert!(
            share > 0.10,
            "path {i} starved under spraying: {share:.3} of {bytes:?}"
        );
    }
}

#[test]
fn per_packet_spray_balances_most_evenly() {
    let burst = uplink_udp_bytes(64);
    let per_pkt = uplink_udp_bytes(1);
    let imbalance = |v: &[u64]| {
        let total: u64 = v.iter().sum();
        let max = *v.iter().max().unwrap() as f64;
        max / (total as f64 / v.len() as f64)
    };
    assert!(
        imbalance(&per_pkt) <= imbalance(&burst) * 1.05,
        "per-packet {:?} should balance at least as well as burst-64 {:?}",
        per_pkt,
        burst
    );
}
