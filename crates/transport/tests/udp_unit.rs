//! Direct unit tests of the CBR UDP sender through a `CtxHarness`.

use netsim::testutil::CtxHarness;
use netsim::{FlowKey, Proto, SimTime, MSS};
use transport::UdpSender;

fn key() -> FlowKey {
    FlowKey {
        src: 0,
        dst: 1,
        sport: 9,
        dport: 10,
        proto: Proto::Udp,
    }
}

#[test]
fn ticks_space_datagrams_at_the_configured_rate() {
    let mut h = CtxHarness::new(1);
    // 1 Gbps, 1500B wire frames -> 12 us per frame.
    let mut u = UdpSender::new(0, key(), 1_000_000_000, u64::MAX);
    let mut now = SimTime::ZERO;
    for i in 0..5u64 {
        h.now = now;
        let next = {
            let mut ctx = h.ctx();
            u.tick(&mut ctx)
        };
        let next = next.expect("unbounded sender always continues");
        assert_eq!(next, now + SimTime::from_us(12), "tick {i}");
        now = next;
    }
    let (pkts, _) = h.drain();
    assert_eq!(pkts.len(), 5);
    assert_eq!(u.sent_pkts(), 5);
    for (i, p) in pkts.iter().enumerate() {
        assert_eq!(p.seq, i as u64 * MSS as u64);
        assert_eq!(p.payload, MSS);
        assert_eq!(p.key.proto, Proto::Udp);
    }
}

#[test]
fn bounded_sender_stops_after_budget() {
    let mut h = CtxHarness::new(1);
    // 2.5 segments of budget: expect MSS, MSS, then a 730-byte runt.
    let total = 2 * MSS as u64 + 730;
    let mut u = UdpSender::new(0, key(), 10_000_000_000, total);
    let mut ticks = 0;
    loop {
        let next = {
            let mut ctx = h.ctx();
            u.tick(&mut ctx)
        };
        ticks += 1;
        if next.is_none() {
            break;
        }
        assert!(ticks < 10, "runaway");
    }
    let (pkts, _) = h.drain();
    assert_eq!(pkts.len(), 3);
    assert_eq!(pkts[2].payload, 730);
    let sent: u64 = pkts.iter().map(|p| p.payload as u64).sum();
    assert_eq!(sent, total);
}

#[test]
fn pinned_sender_never_changes_v() {
    let mut h = CtxHarness::new(1);
    let mut u = UdpSender::new(0, key(), 10_000_000_000, u64::MAX);
    for _ in 0..50 {
        let mut ctx = h.ctx();
        u.tick(&mut ctx);
    }
    let (pkts, _) = h.drain();
    assert!(pkts.iter().all(|p| p.vfield == pkts[0].vfield));
}

#[test]
fn spraying_sender_redraws_v_on_schedule() {
    let mut h = CtxHarness::new(1);
    let mut u = UdpSender::new(0, key(), 10_000_000_000, u64::MAX).with_spray(8);
    for _ in 0..64 {
        let mut ctx = h.ctx();
        u.tick(&mut ctx);
    }
    let (pkts, _) = h.drain();
    // Within each burst of 8 the V is constant...
    for burst in pkts.chunks(8) {
        assert!(burst.iter().all(|p| p.vfield == burst[0].vfield));
    }
    // ...and across the 8 bursts at least two distinct V values appear.
    let vs: std::collections::HashSet<u8> = pkts.chunks(8).map(|b| b[0].vfield).collect();
    assert!(vs.len() >= 2, "spray never moved: {vs:?}");
}
