//! Flow-size distributions.
//!
//! The paper's all-to-all and partition-aggregate experiments draw flow
//! sizes from a heavy-tailed distribution "modeled based on the data from
//! \[8\]" (Benson et al., *Network Traffic Characteristics of Data Centers in
//! the Wild*). The exact table isn't public, so [`FlowSizeDist::web_search`]
//! encodes a CDF with the properties the paper leans on: half the flows are
//! ≤ 10 KB, but the ≈10 % of flows above 1 MB carry the overwhelming
//! majority of the bytes — "a handful of long flows account for a large
//! fraction of network load".
//!
//! Sampling is inverse-transform with log-linear interpolation between CDF
//! knots, so sizes span the whole range rather than clustering on the knots.

use netsim::DetRng;

/// A flow-size distribution.
#[derive(Debug, Clone)]
pub enum FlowSizeDist {
    /// Every flow has exactly this many bytes.
    Fixed(u64),
    /// Uniform between the two bounds (inclusive), in bytes.
    Uniform(u64, u64),
    /// Piecewise log-linear CDF over `(bytes, cum_prob)` knots.
    Cdf(Vec<(u64, f64)>),
}

impl FlowSizeDist {
    /// The heavy-tailed web-search-like distribution described above.
    ///
    /// Bin shares (the paper's Figure 3/4 bins):
    /// `[1 KB, 10 KB]` ≈ 50 % of flows, `(10 KB, 128 KB]` ≈ 28 %,
    /// `(128 KB, 1 MB]` ≈ 12 %, `> 1 MB` ≈ 10 % — the last bin carrying
    /// ≈ 85 % of all bytes.
    pub fn web_search() -> Self {
        FlowSizeDist::Cdf(vec![
            (1_000, 0.00),
            (2_000, 0.12),
            (5_000, 0.30),
            (10_000, 0.50),
            (20_000, 0.60),
            (50_000, 0.70),
            (128_000, 0.78),
            (300_000, 0.84),
            (1_000_000, 0.90),
            (3_000_000, 0.95),
            (10_000_000, 0.98),
            (30_000_000, 0.995),
            (100_000_000, 1.00),
        ])
    }

    /// The data-mining distribution from the DCTCP/VL2 measurement line
    /// (Greenberg et al., *VL2*; Alizadeh et al., *DCTCP*): even more
    /// extreme than web-search — the large majority of flows are tiny
    /// (≈ 80 % under 10 KB), but the tail stretches to 1 GB and flows
    /// above 1 MB carry ≈ 95 % of all bytes.
    ///
    /// Bin shares (the paper's Figure 3/4 bins): `[1 KB, 10 KB]` ≈ 78 %
    /// of flows, `(10 KB, 128 KB]` ≈ 8 %, `(128 KB, 1 MB]` ≈ 6 %,
    /// `> 1 MB` ≈ 8 % — with a mean near 5 MB, an order of magnitude
    /// above web-search's.
    pub fn data_mining() -> Self {
        FlowSizeDist::Cdf(vec![
            (100, 0.00),
            (300, 0.30),
            (1_000, 0.55),
            (3_000, 0.70),
            (10_000, 0.78),
            (100_000, 0.86),
            (1_000_000, 0.92),
            (10_000_000, 0.96),
            (100_000_000, 0.99),
            (1_000_000_000, 1.00),
        ])
    }

    /// Validate CDF monotonicity (and bounds ordering for `Uniform`).
    ///
    /// # Panics
    /// On malformed parameters.
    pub fn validate(&self) {
        match self {
            FlowSizeDist::Fixed(b) => assert!(*b > 0, "zero-size flows"),
            FlowSizeDist::Uniform(lo, hi) => {
                assert!(*lo > 0 && lo <= hi, "bad uniform bounds {lo}..{hi}")
            }
            FlowSizeDist::Cdf(knots) => {
                assert!(knots.len() >= 2, "CDF needs at least two knots");
                assert_eq!(knots.first().unwrap().1, 0.0, "CDF must start at 0");
                assert_eq!(knots.last().unwrap().1, 1.0, "CDF must end at 1");
                for w in knots.windows(2) {
                    assert!(w[0].0 < w[1].0, "CDF bytes must increase");
                    assert!(w[0].1 <= w[1].1, "CDF probs must not decrease");
                }
            }
        }
    }

    /// Draw one flow size.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        match self {
            FlowSizeDist::Fixed(b) => *b,
            FlowSizeDist::Uniform(lo, hi) => lo + (rng.gen_f64() * (hi - lo + 1) as f64) as u64,
            FlowSizeDist::Cdf(knots) => Self::inverse(knots, rng.gen_f64()),
        }
    }

    /// Inverse CDF at probability `p` with log-linear interpolation.
    fn inverse(knots: &[(u64, f64)], p: f64) -> u64 {
        debug_assert!((0.0..1.0).contains(&p));
        for w in knots.windows(2) {
            let (b0, p0) = w[0];
            let (b1, p1) = w[1];
            if p <= p1 {
                if p1 <= p0 {
                    return b1;
                }
                let t = (p - p0) / (p1 - p0);
                let log_b = (b0 as f64).ln() + t * ((b1 as f64).ln() - (b0 as f64).ln());
                return log_b.exp().round().max(1.0) as u64;
            }
        }
        knots.last().unwrap().0
    }

    /// Mean flow size in bytes, computed by deterministic stratified
    /// quadrature over the inverse CDF (exact for `Fixed`, accurate to
    /// ≈0.1 % for the others — plenty for load calibration).
    pub fn mean_bytes(&self) -> f64 {
        match self {
            FlowSizeDist::Fixed(b) => *b as f64,
            FlowSizeDist::Uniform(lo, hi) => (*lo as f64 + *hi as f64) / 2.0,
            FlowSizeDist::Cdf(knots) => {
                const STRATA: usize = 100_000;
                let mut sum = 0.0;
                for i in 0..STRATA {
                    let p = (i as f64 + 0.5) / STRATA as f64;
                    sum += Self::inverse(knots, p) as f64;
                }
                sum / STRATA as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(7, 7)
    }

    #[test]
    fn fixed_is_fixed() {
        let d = FlowSizeDist::Fixed(1_000_000);
        d.validate();
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 1_000_000);
        }
        assert_eq!(d.mean_bytes(), 1_000_000.0);
    }

    #[test]
    fn uniform_stays_in_bounds_with_right_mean() {
        let d = FlowSizeDist::Uniform(1_000, 9_000);
        d.validate();
        let mut r = rng();
        let n = 50_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let s = d.sample(&mut r);
            assert!((1_000..=9_000).contains(&s));
            sum += s;
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 5_000.0).abs() < 60.0, "mean = {mean}");
    }

    #[test]
    fn web_search_is_valid_and_heavy_tailed() {
        let d = FlowSizeDist::web_search();
        d.validate();
        let mut r = rng();
        let n = 200_000;
        let mut small = 0u64; // <= 10KB flows
        let mut big = 0u64; // > 1MB flows
        let mut big_bytes = 0u64;
        let mut total_bytes = 0u64;
        for _ in 0..n {
            let s = d.sample(&mut r);
            assert!((1_000..=100_000_000).contains(&s));
            total_bytes += s;
            if s <= 10_000 {
                small += 1;
            }
            if s > 1_000_000 {
                big += 1;
                big_bytes += s;
            }
        }
        let small_frac = small as f64 / n as f64;
        let big_frac = big as f64 / n as f64;
        let big_byte_share = big_bytes as f64 / total_bytes as f64;
        assert!(
            (0.45..0.55).contains(&small_frac),
            "small flows: {small_frac}"
        );
        assert!((0.07..0.13).contains(&big_frac), "big flows: {big_frac}");
        assert!(
            big_byte_share > 0.75,
            "byte share of >1MB flows: {big_byte_share}"
        );
    }

    #[test]
    fn web_search_mean_matches_samples() {
        let d = FlowSizeDist::web_search();
        let analytic = d.mean_bytes();
        let mut r = rng();
        let n = 400_000;
        let sampled: f64 = (0..n).map(|_| d.sample(&mut r) as f64).sum::<f64>() / n as f64;
        let rel = (analytic - sampled).abs() / analytic;
        assert!(rel < 0.02, "analytic {analytic} vs sampled {sampled}");
    }

    #[test]
    fn data_mining_is_valid_and_tinier_flows_heavier_tail() {
        // CDF-shape sanity against the published distribution: the mass
        // of flows is tiny, the mass of bytes is in the giant tail, and
        // the mean sits an order of magnitude above web-search's.
        let d = FlowSizeDist::data_mining();
        d.validate();
        let mut r = rng();
        let n = 200_000;
        let mut tiny = 0u64; // <= 10KB flows
        let mut big_bytes = 0u64; // bytes in > 1MB flows
        let mut total_bytes = 0u64;
        for _ in 0..n {
            let s = d.sample(&mut r);
            assert!((100..=1_000_000_000).contains(&s));
            total_bytes += s;
            if s <= 10_000 {
                tiny += 1;
            }
            if s > 1_000_000 {
                big_bytes += s;
            }
        }
        let tiny_frac = tiny as f64 / n as f64;
        let big_byte_share = big_bytes as f64 / total_bytes as f64;
        assert!((0.73..0.83).contains(&tiny_frac), "tiny flows: {tiny_frac}");
        assert!(
            big_byte_share > 0.90,
            "byte share of >1MB flows: {big_byte_share}"
        );
        // Percentile spot checks straight off the knots.
        let FlowSizeDist::Cdf(knots) = &d else {
            unreachable!()
        };
        assert_eq!(FlowSizeDist::inverse(knots, 0.55), 1_000);
        assert_eq!(FlowSizeDist::inverse(knots, 0.78), 10_000);
        assert_eq!(FlowSizeDist::inverse(knots, 0.92), 1_000_000);
        // Mean near 5 MB, ~8x web-search's ~600KB.
        let mean = d.mean_bytes();
        assert!(
            (3e6..8e6).contains(&mean),
            "data-mining mean {mean} out of expected band"
        );
        assert!(mean > 4.0 * FlowSizeDist::web_search().mean_bytes());
    }

    #[test]
    fn inverse_cdf_is_monotone() {
        let d = FlowSizeDist::web_search();
        let FlowSizeDist::Cdf(knots) = &d else {
            unreachable!()
        };
        let mut prev = 0;
        for i in 0..1000 {
            let p = i as f64 / 1000.0;
            let v = FlowSizeDist::inverse(knots, p);
            assert!(v >= prev, "non-monotone at p={p}");
            prev = v;
        }
    }

    #[test]
    #[should_panic]
    fn cdf_must_start_at_zero() {
        FlowSizeDist::Cdf(vec![(10, 0.5), (20, 1.0)]).validate();
    }

    #[test]
    #[should_panic]
    fn cdf_bytes_must_increase() {
        FlowSizeDist::Cdf(vec![(10, 0.0), (10, 1.0)]).validate();
    }
}
