//! Workload generators: one function per paper experiment family.
//!
//! Every generator returns a `Vec<FlowSpec>` with dense flow ids `0..n`,
//! ready for `transport::install_agents`-style consumption, and draws all
//! randomness from a caller-supplied [`DetRng`] so runs reproduce exactly.

use netsim::{DetRng, FlowSpec, HostId, SimTime};
use topology::{FatTreeParams, TestbedParams};

use crate::dist::FlowSizeDist;
use crate::load;

/// §4.2.1 functionality microbenchmark (Table 1): `n_flows` simultaneous
/// 250 MB flows from the hosts of one ToR in pod 0 to the hosts of the
/// corresponding ToR in pod 1, paired round-robin (8 flows = one per host
/// pair; 16 = two; 24 = three).
pub fn microbench(p: &FatTreeParams, n_flows: u32, bytes: u64) -> Vec<FlowSpec> {
    let hosts_per_tor = p.hosts_per_tor as u32;
    let pod1_base = (p.tors_per_pod * p.hosts_per_tor) as u32;
    (0..n_flows)
        .map(|i| {
            let src = i % hosts_per_tor;
            let dst = pod1_base + (i % hosts_per_tor);
            FlowSpec::tcp(i, src, dst, bytes, SimTime::ZERO)
        })
        .collect()
}

/// §4.2.2 all-to-all workload (Figures 3/4): every server Poisson-generates
/// flows to uniformly random other servers; sizes from `dist`; `load` is
/// the average pod-uplink utilization. Flows arrive in `[0, duration)`.
pub fn all_to_all(
    p: &FatTreeParams,
    load: f64,
    duration: SimTime,
    dist: &FlowSizeDist,
    rng: &mut DetRng,
) -> Vec<FlowSpec> {
    dist.validate();
    let n = p.n_hosts() as u32;
    let rate = load::fat_tree_flow_rate_per_host(p, load, dist.mean_bytes());
    let mean_gap_secs = 1.0 / rate;
    let mut specs = Vec::new();
    for src in 0..n {
        let mut t = SimTime::from_secs_f64(rng.gen_exp(mean_gap_secs));
        while t < duration {
            let mut dst = rng.gen_range(n - 1);
            if dst >= src {
                dst += 1;
            }
            let bytes = dist.sample(rng);
            // Flow ids assigned after the loop to keep them dense & sorted.
            specs.push((t, src, dst, bytes));
            t += SimTime::from_secs_f64(rng.gen_exp(mean_gap_secs));
        }
    }
    // Sort by arrival time for reproducible, time-ordered ids.
    specs.sort_by_key(|&(t, src, _, _)| (t, src));
    specs
        .into_iter()
        .enumerate()
        .map(|(id, (t, src, dst, bytes))| FlowSpec::tcp(id as u32, src, dst, bytes, t))
        .collect()
}

/// §4.2.4 partition-aggregate workload (Figure 5): jobs arrive Poisson with
/// aggregate intensity `load`; each job is `job_bytes` split evenly across
/// `fan_in` workers at uniformly random hosts, all sending simultaneously
/// to a uniformly random aggregator.
pub fn partition_aggregate(
    p: &FatTreeParams,
    load: f64,
    fan_in: u32,
    job_bytes: u64,
    duration: SimTime,
    rng: &mut DetRng,
) -> Vec<FlowSpec> {
    assert!(fan_in >= 1);
    let n = p.n_hosts() as u32;
    assert!(fan_in < n, "fan-in must leave room for the aggregator");
    // Jobs/s such that the offered bytes match the all-to-all convention.
    let offered_bps = load::fat_tree_offered_bps(p, load);
    let job_rate = offered_bps / (job_bytes as f64 * 8.0);
    let mean_gap_secs = 1.0 / job_rate;
    let per_worker = job_bytes / fan_in as u64;

    let mut specs = Vec::new();
    let mut t = SimTime::from_secs_f64(rng.gen_exp(mean_gap_secs));
    let mut job_id = 0u32;
    while t < duration {
        let aggregator = rng.gen_range(n);
        // Pick fan_in distinct workers != aggregator.
        let mut workers = Vec::with_capacity(fan_in as usize);
        while workers.len() < fan_in as usize {
            let w = rng.gen_range(n);
            if w != aggregator && !workers.contains(&w) {
                workers.push(w);
            }
        }
        for w in workers {
            specs.push((t, w, aggregator, per_worker, job_id));
        }
        job_id += 1;
        t += SimTime::from_secs_f64(rng.gen_exp(mean_gap_secs));
    }
    specs
        .into_iter()
        .enumerate()
        .map(|(id, (t, src, dst, bytes, job))| {
            FlowSpec::tcp(id as u32, src, dst, bytes, t).with_job(job)
        })
        .collect()
}

/// §4.3 testbed workload (Figure 8): the hosts of ToR `src_tor` initiate
/// `flow_bytes` flows to uniformly random other servers with exponential
/// inter-arrivals, cumulatively offering `load` of the ToR's uplink
/// capacity.
pub fn testbed_one_tor(
    p: &TestbedParams,
    tor_hosts: std::ops::Range<usize>,
    n_hosts: usize,
    load: f64,
    flow_bytes: u64,
    duration: SimTime,
    rng: &mut DetRng,
) -> Vec<FlowSpec> {
    let senders: Vec<HostId> = tor_hosts.clone().map(|h| h as HostId).collect();
    let rate = load::testbed_flow_rate_per_sender(p, senders.len(), load, flow_bytes as f64);
    let mean_gap_secs = 1.0 / rate;
    let mut specs = Vec::new();
    for &src in &senders {
        let mut t = SimTime::from_secs_f64(rng.gen_exp(mean_gap_secs));
        while t < duration {
            let mut dst = rng.gen_range(n_hosts as u32 - 1);
            if dst >= src {
                dst += 1;
            }
            specs.push((t, src, dst));
            t += SimTime::from_secs_f64(rng.gen_exp(mean_gap_secs));
        }
    }
    specs.sort_by_key(|&(t, src, _)| (t, src));
    specs
        .into_iter()
        .enumerate()
        .map(|(id, (t, src, dst))| FlowSpec::tcp(id as u32, src, dst, flow_bytes, t))
        .collect()
}

/// §4.3.1 hotspot workload: a random shuffle of `flow_bytes` TCP flows from
/// ToR `src` hosts to ToR `dst` hosts at aggregate `tcp_bps`, plus one
/// rate-limited UDP flow (`udp_bps`) between the same ToR pair pinning a
/// hotspot onto whatever path it hashes to. The UDP flow has the **last**
/// flow id.
#[allow(clippy::too_many_arguments)]
pub fn hotspot(
    src_hosts: std::ops::Range<usize>,
    dst_hosts: std::ops::Range<usize>,
    tcp_bps: f64,
    udp_bps: u64,
    flow_bytes: u64,
    duration: SimTime,
    rng: &mut DetRng,
) -> Vec<FlowSpec> {
    let flow_rate = tcp_bps / (flow_bytes as f64 * 8.0);
    let mean_gap_secs = 1.0 / flow_rate;
    let mut raw = Vec::new();
    let mut t = SimTime::from_secs_f64(rng.gen_exp(mean_gap_secs));
    while t < duration {
        let src = src_hosts.start + rng.gen_index(src_hosts.len());
        let dst = dst_hosts.start + rng.gen_index(dst_hosts.len());
        raw.push((t, src as HostId, dst as HostId));
        t += SimTime::from_secs_f64(rng.gen_exp(mean_gap_secs));
    }
    let mut specs: Vec<FlowSpec> = raw
        .into_iter()
        .enumerate()
        .map(|(id, (t, src, dst))| FlowSpec::tcp(id as u32, src, dst, flow_bytes, t))
        .collect();
    let udp_src = src_hosts.start as HostId;
    let udp_dst = dst_hosts.start as HostId;
    specs.push(FlowSpec::udp(
        specs.len() as u32,
        udp_src,
        udp_dst,
        udp_bps,
        SimTime::ZERO,
    ));
    specs
}

/// Permutation traffic: every host sends one `bytes` flow to a distinct
/// partner (a random derangement — no host sends to itself and no two
/// flows share a destination), all starting at `start`. The classic
/// worst-case-for-static-hashing benchmark: offered load is perfectly
/// balanceable, so any residual slowdown is pure collision damage.
pub fn permutation(n_hosts: usize, bytes: u64, start: SimTime, rng: &mut DetRng) -> Vec<FlowSpec> {
    assert!(n_hosts >= 2);
    // Fisher-Yates a candidate mapping until it is a derangement on every
    // index (retry whole shuffles; expected ~e tries).
    let mut dst: Vec<u32> = (0..n_hosts as u32).collect();
    loop {
        for i in (1..n_hosts).rev() {
            let j = rng.gen_index(i + 1);
            dst.swap(i, j);
        }
        if dst.iter().enumerate().all(|(i, &d)| i as u32 != d) {
            break;
        }
    }
    dst.iter()
        .enumerate()
        .map(|(src, &d)| FlowSpec::tcp(src as u32, src as u32, d, bytes, start))
        .collect()
}

/// Stride traffic: host `i` sends one `bytes` flow to host
/// `(i + stride) mod n`, all starting at `start`. With `stride` = hosts
/// per pod this is the canonical all-cross-pod pattern that stresses the
/// core tier maximally.
pub fn stride(n_hosts: usize, stride: usize, bytes: u64, start: SimTime) -> Vec<FlowSpec> {
    assert!(n_hosts >= 2);
    assert!(
        !stride.is_multiple_of(n_hosts),
        "stride must move traffic off-host"
    );
    (0..n_hosts)
        .map(|i| {
            let d = ((i + stride) % n_hosts) as u32;
            FlowSpec::tcp(i as u32, i as u32, d, bytes, start)
        })
        .collect()
}

/// Group flows by partition-aggregate job id, skipping untagged flows.
///
/// Workloads may legally mix job-tagged flows (partition-aggregate) with
/// untagged background traffic (e.g. an all-to-all sharing the fabric);
/// analysis code that assumed `spec.job` was always `Some` panicked on
/// such mixes. Returns `(groups sorted by job id, untagged_count)` so
/// callers can both iterate deterministically and surface how many flows
/// were outside any job.
pub fn jobs_by_id(specs: &[FlowSpec]) -> (Vec<(u32, Vec<&FlowSpec>)>, usize) {
    let mut jobs: std::collections::BTreeMap<u32, Vec<&FlowSpec>> =
        std::collections::BTreeMap::new();
    let mut untagged = 0usize;
    for s in specs {
        match s.job {
            Some(j) => jobs.entry(j).or_default().push(s),
            None => untagged += 1,
        }
    }
    (jobs.into_iter().collect(), untagged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Proto;

    fn rng() -> DetRng {
        DetRng::new(42, 1)
    }

    #[test]
    fn microbench_pairs_tors_across_pods() {
        let p = FatTreeParams::paper();
        for n in [8u32, 16, 24] {
            let specs = microbench(&p, n, 250_000_000);
            assert_eq!(specs.len(), n as usize);
            for (i, s) in specs.iter().enumerate() {
                assert_eq!(s.id as usize, i);
                assert!(s.src < 8, "src in ToR 0 of pod 0");
                assert!((32..40).contains(&s.dst), "dst in ToR 0 of pod 1");
                assert_eq!(s.bytes, 250_000_000);
                assert_eq!(s.start, SimTime::ZERO);
            }
            // Per-host flow counts are balanced.
            let mut per_src = [0u32; 8];
            for s in &specs {
                per_src[s.src as usize] += 1;
            }
            assert!(per_src.iter().all(|&c| c == n / 8));
        }
    }

    #[test]
    fn all_to_all_hits_target_load() {
        let p = FatTreeParams::paper();
        let dist = FlowSizeDist::Fixed(1_000_000);
        let dur = SimTime::from_ms(500);
        let specs = all_to_all(&p, 0.4, dur, &dist, &mut rng());
        // Offered bits over the window vs expectation.
        let offered: f64 = specs.iter().map(|s| s.bytes as f64 * 8.0).sum();
        let expect = load::fat_tree_offered_bps(&p, 0.4) * dur.as_secs_f64();
        let rel = (offered - expect).abs() / expect;
        assert!(rel < 0.05, "offered {offered:.3e} vs expected {expect:.3e}");
        // Ids dense and starts sorted.
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.id as usize, i);
            assert_ne!(s.src, s.dst);
            assert!(s.start < dur);
            if i > 0 {
                assert!(specs[i - 1].start <= s.start);
            }
        }
    }

    #[test]
    fn all_to_all_destinations_are_spread() {
        let p = FatTreeParams::paper();
        let dist = FlowSizeDist::Fixed(100_000);
        let specs = all_to_all(&p, 0.4, SimTime::from_ms(200), &dist, &mut rng());
        let mut dst_seen = [false; 128];
        for s in &specs {
            dst_seen[s.dst as usize] = true;
        }
        let covered = dst_seen.iter().filter(|&&b| b).count();
        assert!(covered > 100, "only {covered}/128 destinations seen");
    }

    #[test]
    fn partition_aggregate_structure() {
        let p = FatTreeParams::paper();
        let specs = partition_aggregate(&p, 0.4, 8, 1_000_000, SimTime::from_ms(100), &mut rng());
        assert!(!specs.is_empty());
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.id as usize, i, "flow ids must be dense");
        }
        // Group by job: every job has exactly 8 flows of 125KB to one
        // aggregator, all starting together.
        let (jobs, untagged) = jobs_by_id(&specs);
        assert_eq!(untagged, 0, "pure partition-aggregate has no strays");
        for (_, flows) in &jobs {
            assert_eq!(flows.len(), 8);
            let agg = flows[0].dst;
            let t0 = flows[0].start;
            for f in flows {
                assert_eq!(f.dst, agg);
                assert_eq!(f.start, t0);
                assert_eq!(f.bytes, 125_000);
                assert_ne!(f.src, agg);
            }
            // Workers are distinct.
            let mut srcs: Vec<_> = flows.iter().map(|f| f.src).collect();
            srcs.sort_unstable();
            srcs.dedup();
            assert_eq!(srcs.len(), 8);
        }
    }

    #[test]
    fn mixed_tagged_and_untagged_flows_group_without_panicking() {
        // Regression: grouping used `s.job.unwrap()`, so a workload mixing
        // partition-aggregate jobs with untagged background flows aborted.
        let p = FatTreeParams::paper();
        let mut specs =
            partition_aggregate(&p, 0.2, 8, 1_000_000, SimTime::from_ms(50), &mut rng());
        let tagged = specs.len();
        // Append untagged background flows with continuing dense ids.
        let next = specs.len() as u32;
        for k in 0..5u32 {
            specs.push(FlowSpec::tcp(
                next + k,
                k,
                64 + k,
                100_000,
                SimTime::from_us(k as u64),
            ));
        }
        let (jobs, untagged) = jobs_by_id(&specs);
        assert_eq!(untagged, 5, "strays are counted, not fatal");
        let grouped: usize = jobs.iter().map(|(_, f)| f.len()).sum();
        assert_eq!(grouped, tagged, "every tagged flow lands in its job");
        // Groups come back sorted by job id for deterministic iteration.
        assert!(jobs.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn testbed_one_tor_only_tor0_sends() {
        let p = TestbedParams::paper();
        let n = p.n_hosts();
        let specs = testbed_one_tor(
            &p,
            0..12,
            n,
            0.4,
            1_000_000,
            SimTime::from_ms(200),
            &mut rng(),
        );
        assert!(!specs.is_empty());
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.id as usize, i);
            assert!(s.src < 12);
            assert!((s.dst as usize) < n);
            assert_ne!(s.src, s.dst);
            assert_eq!(s.bytes, 1_000_000);
        }
    }

    #[test]
    fn hotspot_appends_one_udp_flow() {
        let specs = hotspot(
            0..12,
            12..24,
            14e9,
            6_000_000_000,
            1_000_000,
            SimTime::from_ms(50),
            &mut rng(),
        );
        let udp: Vec<_> = specs.iter().filter(|s| s.proto == Proto::Udp).collect();
        assert_eq!(udp.len(), 1);
        assert_eq!(udp[0].id as usize, specs.len() - 1);
        assert_eq!(udp[0].udp_rate_bps, 6_000_000_000);
        for s in specs.iter().filter(|s| s.proto == Proto::Tcp) {
            assert!((0..12).contains(&(s.src as usize)));
            assert!((12..24).contains(&(s.dst as usize)));
        }
        // TCP aggregate ~14Gbps over 50ms = 87.5MB = ~87 flows.
        let tcp_count = specs.len() - 1;
        assert!((60..120).contains(&tcp_count), "tcp flows = {tcp_count}");
    }

    #[test]
    fn permutation_is_a_derangement_with_unique_destinations() {
        let mut r = rng();
        for n in [2usize, 3, 16, 128] {
            let specs = permutation(n, 1_000_000, SimTime::ZERO, &mut r);
            assert_eq!(specs.len(), n);
            let mut seen = vec![false; n];
            for (i, s) in specs.iter().enumerate() {
                assert_eq!(s.src as usize, i);
                assert_ne!(s.src, s.dst, "derangement violated");
                assert!(!seen[s.dst as usize], "duplicate destination");
                seen[s.dst as usize] = true;
            }
        }
    }

    #[test]
    fn stride_wraps_and_rejects_degenerate() {
        let specs = stride(8, 3, 500, SimTime::from_us(2));
        assert_eq!(specs.len(), 8);
        assert_eq!(specs[7].dst, 2);
        assert!(specs.iter().all(|s| s.start == SimTime::from_us(2)));
        let r = std::panic::catch_unwind(|| stride(8, 8, 500, SimTime::ZERO));
        assert!(r.is_err(), "stride == n must panic");
    }

    #[test]
    fn generators_are_deterministic() {
        let p = FatTreeParams::paper();
        let dist = FlowSizeDist::web_search();
        let mk = || {
            let mut r = DetRng::new(9, 9);
            all_to_all(&p, 0.2, SimTime::from_ms(100), &dist, &mut r)
                .iter()
                .map(|s| (s.start, s.src, s.dst, s.bytes))
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }
}
