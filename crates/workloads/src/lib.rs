//! # workloads — traffic generators for the FlowBender evaluation
//!
//! Deterministic generators for every traffic pattern in the paper's §4:
//!
//! * [`gen::microbench`] — Table 1's simultaneous 250 MB ToR-to-ToR flows;
//! * [`gen::all_to_all`] — Figures 3/4/6/7's Poisson all-to-all with the
//!   heavy-tailed [`dist::FlowSizeDist::web_search`] sizes;
//! * [`gen::partition_aggregate`] — Figure 5's synchronized incast jobs;
//! * [`gen::testbed_one_tor`] — Figure 8's one-ToR-sources workload;
//! * [`gen::hotspot`] — §4.3.1's 14 Gbps TCP shuffle + 6 Gbps UDP pin;
//! * [`gen::permutation`] / [`gen::stride`] — classic synthetic matrices
//!   for load-balancer stress tests beyond the paper's workloads.
//!
//! The [`load`] module converts the paper's "% of bisection bandwidth"
//! into per-host arrival rates.
//!
//! On top of the free-function generators sits the [`spec`] registry: every
//! traffic pattern as a named, parameterized [`Workload`] selectable by
//! slug (`websearch`, `datamining`, `alltoall`, `incast:<fanin>`,
//! `hotspot:<zipf-skew>`, `onoff:<burst>`) — the traffic-side twin of the
//! experiments crate's scheme registry — and [`stream::PoissonStream`],
//! the O(hosts)-memory streaming generator for trace-scale runs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dist;
pub mod gen;
pub mod load;
pub mod patterns;
pub mod spec;
pub mod stream;

pub use dist::FlowSizeDist;
pub use gen::{
    all_to_all, hotspot, jobs_by_id, microbench, partition_aggregate, permutation, stride,
    testbed_one_tor,
};
pub use spec::{find, registry, Workload};
pub use stream::PoissonStream;
