//! Load calibration: translating the paper's "X % of bisection bandwidth"
//! into per-host Poisson arrival rates.
//!
//! The paper reports load "relative to the bisectional bandwidth". For the
//! fat-tree, the natural reading (and the one that makes 60 % load
//! stressful but stable, as in the paper) is that the *pod uplinks* — the
//! fabric's narrowest shared tier — run at the stated utilization. With
//! uniformly random destinations a fraction `(n - hosts_per_pod)/(n - 1)`
//! of traffic crosses pods, so the per-host offered rate follows from the
//! pod uplink capacity. The testbed experiments state their load directly
//! against the sending ToR's 4 × 10 Gbps uplinks.

use topology::{FatTreeParams, TestbedParams};

/// Fraction of uniformly-random traffic that leaves the source pod.
pub fn inter_pod_fraction(p: &FatTreeParams) -> f64 {
    let n = p.n_hosts() as f64;
    let pod = (p.tors_per_pod * p.hosts_per_tor) as f64;
    (n - pod) / (n - 1.0)
}

/// Offered bits/s per host so that pod uplinks average `load` utilization
/// under uniform all-to-all traffic.
pub fn fat_tree_per_host_bps(p: &FatTreeParams, load: f64) -> f64 {
    assert!((0.0..=1.5).contains(&load), "load {load} out of range");
    let hosts_per_pod = (p.tors_per_pod * p.hosts_per_tor) as f64;
    load * p.pod_uplink_bps() as f64 / (hosts_per_pod * inter_pod_fraction(p))
}

/// Total offered bits/s across the whole fat-tree at `load`.
pub fn fat_tree_offered_bps(p: &FatTreeParams, load: f64) -> f64 {
    fat_tree_per_host_bps(p, load) * p.n_hosts() as f64
}

/// Per-host flow arrival rate (flows/s) for the fat-tree at `load` with
/// mean flow size `mean_bytes`.
pub fn fat_tree_flow_rate_per_host(p: &FatTreeParams, load: f64, mean_bytes: f64) -> f64 {
    assert!(mean_bytes > 0.0);
    fat_tree_per_host_bps(p, load) / (mean_bytes * 8.0)
}

/// Per-sender flow arrival rate (flows/s) for the §4.3 testbed experiment:
/// the hosts of one ToR cumulatively offer `load` of that ToR's uplink
/// capacity, in flows of `mean_bytes`.
pub fn testbed_flow_rate_per_sender(
    p: &TestbedParams,
    senders: usize,
    load: f64,
    mean_bytes: f64,
) -> f64 {
    assert!(senders > 0);
    assert!((0.0..=1.5).contains(&load), "load {load} out of range");
    assert!(mean_bytes > 0.0);
    load * p.tor_uplink_bps() as f64 / (senders as f64 * mean_bytes * 8.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fat_tree_inter_pod_fraction() {
        let p = FatTreeParams::paper();
        let f = inter_pod_fraction(&p);
        // (128-32)/127
        assert!((f - 96.0 / 127.0).abs() < 1e-12);
    }

    #[test]
    fn per_host_rate_scales_linearly_with_load() {
        let p = FatTreeParams::paper();
        let r20 = fat_tree_per_host_bps(&p, 0.2);
        let r60 = fat_tree_per_host_bps(&p, 0.6);
        assert!((r60 / r20 - 3.0).abs() < 1e-9);
        // At 60% load each host offers ~2 Gbps:
        // 0.6 * 80e9 / (32 * 0.7559) = 1.98e9.
        assert!((r60 - 1.984e9).abs() < 0.01e9, "r60 = {r60}");
    }

    #[test]
    fn offered_load_recovers_uplink_utilization() {
        // Sanity: offered * inter_pod_frac spread over all pods' uplinks
        // equals the requested utilization.
        let p = FatTreeParams::paper();
        let load = 0.4;
        let offered = fat_tree_offered_bps(&p, load);
        let core_bits = offered * inter_pod_fraction(&p);
        let capacity = (p.pods as f64) * p.pod_uplink_bps() as f64;
        assert!((core_bits / capacity - load).abs() < 1e-12);
    }

    #[test]
    fn flow_rate_uses_mean_size() {
        let p = FatTreeParams::paper();
        let r = fat_tree_flow_rate_per_host(&p, 0.6, 1_000_000.0);
        // ~1.98 Gbps / 8 Mbit = ~248 flows/s.
        assert!((r - 248.0).abs() < 2.0, "r = {r}");
    }

    #[test]
    fn testbed_rate_matches_hand_calc() {
        let p = TestbedParams::paper();
        // 40 Gbps uplinks, 12 senders, 1MB flows, 60% load:
        // 0.6*40e9/(12*8e6) = 250 flows/s/sender.
        let r = testbed_flow_rate_per_sender(&p, 12, 0.6, 1_000_000.0);
        assert!((r - 250.0).abs() < 1e-9, "r = {r}");
    }

    #[test]
    #[should_panic]
    fn absurd_load_rejected() {
        fat_tree_per_host_bps(&FatTreeParams::paper(), 7.0);
    }
}
