//! `alltoall` — Poisson all-to-all with fixed 1 MB flows: the
//! constant-size control for separating size-distribution effects from
//! routing effects.

use netsim::{DetRng, FlowSpec, SimTime};
use topology::FatTreeParams;

use crate::dist::FlowSizeDist;
use crate::gen;
use crate::spec::Workload;

/// Poisson all-to-all, every flow exactly 1 MB.
pub struct AllToAll;

/// The `alltoall` workload.
pub fn alltoall() -> AllToAll {
    AllToAll
}

impl AllToAll {
    fn dist(&self) -> FlowSizeDist {
        FlowSizeDist::Fixed(1_000_000)
    }
}

impl Workload for AllToAll {
    fn name(&self) -> String {
        "AllToAll(1MB)".into()
    }

    fn brief(&self) -> String {
        "Poisson all-to-all, fixed 1 MB flows (size-distribution control)".into()
    }

    fn generate(
        &self,
        p: &FatTreeParams,
        load: f64,
        duration: SimTime,
        rng: &mut DetRng,
    ) -> Vec<FlowSpec> {
        gen::all_to_all(p, load, duration, &self.dist(), rng)
    }

    fn stream_dist(&self) -> Option<FlowSizeDist> {
        Some(self.dist())
    }
}
