//! `datamining` — Poisson all-to-all with the even heavier-tailed
//! data-mining flow sizes (VL2/DCTCP measurement line).

use netsim::{DetRng, FlowSpec, SimTime};
use topology::FatTreeParams;

use crate::dist::FlowSizeDist;
use crate::gen;
use crate::spec::Workload;

/// Poisson all-to-all with [`FlowSizeDist::data_mining`] sizes: ≈80 % of
/// flows under 10 KB, ≈95 % of bytes in the >1 MB tail.
pub struct Datamining;

/// The `datamining` workload.
pub fn datamining() -> Datamining {
    Datamining
}

impl Workload for Datamining {
    fn name(&self) -> String {
        "Datamining".into()
    }

    fn brief(&self) -> String {
        "Poisson all-to-all, extreme-tailed data-mining flow sizes (VL2)".into()
    }

    fn generate(
        &self,
        p: &FatTreeParams,
        load: f64,
        duration: SimTime,
        rng: &mut DetRng,
    ) -> Vec<FlowSpec> {
        gen::all_to_all(p, load, duration, &FlowSizeDist::data_mining(), rng)
    }

    fn stream_dist(&self) -> Option<FlowSizeDist> {
        Some(FlowSizeDist::data_mining())
    }
}
