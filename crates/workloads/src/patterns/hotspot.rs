//! `hotspot:<zipf-skew>` — a Zipf-skewed destination matrix: every host
//! Poisson-generates flows, but destinations are drawn by Zipf rank, so a
//! few hosts soak up most of the traffic and the links around them become
//! persistent hotspots (the fabric-asymmetry stressor the testbed's
//! UDP-pin hotspot approximates with one flow).

use netsim::{DetRng, FlowSpec, SimTime};
use topology::FatTreeParams;

use crate::dist::FlowSizeDist;
use crate::load;
use crate::spec::Workload;

/// Zipf-skewed all-to-all: destination with rank `j` (0-based, by host
/// id) is drawn with weight `1/(j+1)^skew`; `skew = 0` degenerates to the
/// uniform all-to-all, larger skews concentrate harder. Flow sizes are
/// web-search.
pub struct ZipfHotspot {
    skew: f64,
}

/// The `hotspot:<skew>` workload (`hotspot` alone defaults to z = 1).
pub fn zipf_hotspot(skew: f64) -> ZipfHotspot {
    assert!(skew.is_finite() && skew >= 0.0, "bad zipf skew {skew}");
    ZipfHotspot { skew }
}

impl Workload for ZipfHotspot {
    fn name(&self) -> String {
        format!("Hotspot(z={})", self.skew)
    }

    fn brief(&self) -> String {
        format!(
            "Poisson senders, Zipf(s={}) destination skew pinning hotspots",
            self.skew
        )
    }

    fn generate(
        &self,
        p: &FatTreeParams,
        load: f64,
        duration: SimTime,
        rng: &mut DetRng,
    ) -> Vec<FlowSpec> {
        let n = p.n_hosts() as u32;
        assert!(n >= 2);
        let dist = FlowSizeDist::web_search();
        let rate = load::fat_tree_flow_rate_per_host(p, load, dist.mean_bytes());
        let mean_gap_secs = 1.0 / rate;
        // Cumulative Zipf weights over host ids; a destination is picked
        // by binary search on a uniform draw scaled to the total mass.
        let mut cum = Vec::with_capacity(n as usize);
        let mut total = 0.0f64;
        for j in 0..n {
            total += 1.0 / ((j + 1) as f64).powf(self.skew);
            cum.push(total);
        }
        let mut specs = Vec::new();
        for src in 0..n {
            let mut t = SimTime::from_secs_f64(rng.gen_exp(mean_gap_secs));
            while t < duration {
                // Rejection on self-sends keeps the marginal Zipf shape
                // over the remaining hosts.
                let dst = loop {
                    let u = rng.gen_f64() * total;
                    let d = cum.partition_point(|&c| c < u) as u32;
                    let d = d.min(n - 1);
                    if d != src {
                        break d;
                    }
                };
                let bytes = dist.sample(rng);
                specs.push((t, src, dst, bytes));
                t += SimTime::from_secs_f64(rng.gen_exp(mean_gap_secs));
            }
        }
        specs.sort_by_key(|&(t, src, _, _)| (t, src));
        specs
            .into_iter()
            .enumerate()
            .map(|(id, (t, src, dst, bytes))| FlowSpec::tcp(id as u32, src, dst, bytes, t))
            .collect()
    }
}
