//! `incast:<fanin>` — the paper's §4.2.4 partition-aggregate jobs, with
//! the fan-in as a registry parameter so sweeps reach 1000:1.

use netsim::{DetRng, FlowSpec, SimTime};
use topology::FatTreeParams;

use crate::gen;
use crate::spec::Workload;

/// Each job's total payload: 1 MB split evenly across the workers, the
/// paper's Figure 5 configuration.
const JOB_BYTES: u64 = 1_000_000;

/// Partition-aggregate incast: Poisson job arrivals, each job `fan_in`
/// synchronized workers sending to one random aggregator.
pub struct Incast {
    fan_in: u32,
}

/// The `incast:<fanin>` workload (`incast` alone defaults to 32:1).
pub fn incast(fan_in: u32) -> Incast {
    assert!(fan_in >= 1, "incast fan-in must be >= 1");
    Incast { fan_in }
}

impl Workload for Incast {
    fn name(&self) -> String {
        format!("Incast({}:1)", self.fan_in)
    }

    fn brief(&self) -> String {
        format!(
            "partition-aggregate jobs, {} synchronized senders per aggregator (Fig. 5)",
            self.fan_in
        )
    }

    fn generate(
        &self,
        p: &FatTreeParams,
        load: f64,
        duration: SimTime,
        rng: &mut DetRng,
    ) -> Vec<FlowSpec> {
        assert!(
            (self.fan_in as usize) < p.n_hosts(),
            "incast fan-in {} needs a topology with more than {} hosts",
            self.fan_in,
            p.n_hosts()
        );
        gen::partition_aggregate(p, load, self.fan_in, JOB_BYTES, duration, rng)
    }
}
