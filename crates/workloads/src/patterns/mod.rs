//! One file per registered workload (see [`crate::spec`]).
//!
//! Each file defines one small struct implementing [`crate::Workload`]
//! plus a lowercase constructor — the same layout as the experiments
//! crate's scheme registry, so adding a pattern never touches another
//! pattern's file.

mod alltoall;
mod datamining;
mod hotspot;
mod incast;
mod onoff;
mod websearch;

pub use alltoall::alltoall;
pub use datamining::datamining;
pub use hotspot::zipf_hotspot;
pub use incast::incast;
pub use onoff::onoff;
pub use websearch::websearch;
