//! `onoff:<burst>` — ON/OFF bursty senders: each host alternates
//! exponential ON and OFF periods, sending only while ON at `burst`× the
//! calibrated average rate. The time-average offered load matches the
//! uniform all-to-all at the same `load`, but arrivals come in squalls —
//! the burstiness the paper's Poisson workloads deliberately lack.

use netsim::{DetRng, FlowSpec, SimTime};
use topology::FatTreeParams;

use crate::dist::FlowSizeDist;
use crate::load;
use crate::spec::Workload;

/// Mean ON-period length. A couple of milliseconds is long against the
/// fabric RTT (~40 µs) and short against run durations, so queues see
/// genuine squalls rather than a slightly-modulated Poisson process.
const ON_MEAN_S: f64 = 2e-3;

/// ON/OFF bursty all-to-all: ON periods exp(2 ms), OFF periods scaled so
/// the duty cycle is `1/burst`, in-ON arrival rate `burst`× the average —
/// preserving the load calibration while concentrating arrivals.
pub struct OnOff {
    burst: f64,
}

/// The `onoff:<burst>` workload (`onoff` alone defaults to burst = 5).
pub fn onoff(burst: f64) -> OnOff {
    assert!(
        burst.is_finite() && burst >= 1.0,
        "bad burst factor {burst}"
    );
    OnOff { burst }
}

impl Workload for OnOff {
    fn name(&self) -> String {
        format!("OnOff(burst={})", self.burst)
    }

    fn brief(&self) -> String {
        format!(
            "ON/OFF bursty senders, {}x peak rate at 1/{} duty cycle",
            self.burst, self.burst
        )
    }

    fn generate(
        &self,
        p: &FatTreeParams,
        load: f64,
        duration: SimTime,
        rng: &mut DetRng,
    ) -> Vec<FlowSpec> {
        let n = p.n_hosts() as u32;
        let dist = FlowSizeDist::web_search();
        let avg_rate = load::fat_tree_flow_rate_per_host(p, load, dist.mean_bytes());
        let on_gap_secs = 1.0 / (avg_rate * self.burst);
        let off_mean_s = ON_MEAN_S * (self.burst - 1.0);
        let mut specs = Vec::new();
        for src in 0..n {
            let mut t = 0.0f64;
            // Desynchronize sources: start each at a random phase of its
            // first OFF period.
            if off_mean_s > 0.0 {
                t += rng.gen_f64() * (ON_MEAN_S + off_mean_s);
            }
            while t < duration.as_secs_f64() {
                let on_end = t + rng.gen_exp(ON_MEAN_S);
                let mut s = t + rng.gen_exp(on_gap_secs);
                while s < on_end && s < duration.as_secs_f64() {
                    let mut dst = rng.gen_range(n - 1);
                    if dst >= src {
                        dst += 1;
                    }
                    let bytes = dist.sample(rng);
                    specs.push((SimTime::from_secs_f64(s), src, dst, bytes));
                    s += rng.gen_exp(on_gap_secs);
                }
                t = on_end;
                if off_mean_s > 0.0 {
                    t += rng.gen_exp(off_mean_s);
                }
            }
        }
        specs.sort_by_key(|&(t, src, _, _)| (t, src));
        specs
            .into_iter()
            .enumerate()
            .map(|(id, (t, src, dst, bytes))| FlowSpec::tcp(id as u32, src, dst, bytes, t))
            .collect()
    }
}
