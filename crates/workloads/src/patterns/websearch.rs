//! `websearch` — the paper's §4.2.2 evaluation workload: Poisson
//! all-to-all with heavy-tailed web-search flow sizes.

use netsim::{DetRng, FlowSpec, SimTime};
use topology::FatTreeParams;

use crate::dist::FlowSizeDist;
use crate::gen;
use crate::spec::Workload;

/// Poisson all-to-all with [`FlowSizeDist::web_search`] sizes.
///
/// This is byte-for-byte the generator the Figure 3/4 sweeps always used
/// (`gen::all_to_all` + web-search CDF): selecting it through the
/// registry reproduces the historical flow lists exactly.
pub struct Websearch;

/// The `websearch` workload.
pub fn websearch() -> Websearch {
    Websearch
}

impl Workload for Websearch {
    fn name(&self) -> String {
        "Websearch".into()
    }

    fn brief(&self) -> String {
        "Poisson all-to-all, heavy-tailed web-search flow sizes (Fig. 3/4)".into()
    }

    fn generate(
        &self,
        p: &FatTreeParams,
        load: f64,
        duration: SimTime,
        rng: &mut DetRng,
    ) -> Vec<FlowSpec> {
        gen::all_to_all(p, load, duration, &FlowSizeDist::web_search(), rng)
    }

    fn stream_dist(&self) -> Option<FlowSizeDist> {
        Some(FlowSizeDist::web_search())
    }
}
