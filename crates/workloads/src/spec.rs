//! The workload registry: every traffic pattern as one named,
//! parameterized [`Workload`] selectable by slug — the traffic-side twin
//! of the experiments crate's `SchemeSpec` registry.
//!
//! One file per workload under [`crate::patterns`]. Adding a workload is:
//! write one new file next to the existing ones, add one line to
//! [`registry`] (and, if it takes a parameter, one arm to [`find`]) —
//! nothing else. Experiments select a generator with `--workload <slug>`
//! instead of hard-coding free functions.
//!
//! | slug | pattern |
//! |------|---------|
//! | `websearch` | Poisson all-to-all, web-search flow sizes |
//! | `datamining` | Poisson all-to-all, data-mining flow sizes |
//! | `alltoall` | Poisson all-to-all, fixed 1 MB flows |
//! | `incast:<fanin>` | partition-aggregate jobs, `<fanin>`:1 (to 1000:1) |
//! | `hotspot:<skew>` | Zipf(`<skew>`)-skewed destination matrix |
//! | `onoff:<burst>` | ON/OFF bursty senders at `<burst>`× peak rate |

use netsim::{DetRng, FlowSpec, SimTime};
use topology::FatTreeParams;

use crate::dist::FlowSizeDist;
use crate::patterns;

/// One named traffic pattern: everything a runner needs to generate the
/// offered load, plus how to present it.
///
/// `load` is the same unit everywhere: average pod-uplink utilization
/// (the paper's "% of bisection bandwidth"), so workloads are swappable
/// under a fixed load point. Generators must return dense, arrival-sorted
/// flow ids `0..n` and draw all randomness from the caller's [`DetRng`].
pub trait Workload: Sync + Send {
    /// Display name, parameters included (e.g. `Incast(32:1)`).
    fn name(&self) -> String;

    /// One-line description for the registry table.
    fn brief(&self) -> String;

    /// Generate the flow list for one run.
    fn generate(
        &self,
        p: &FatTreeParams,
        load: f64,
        duration: SimTime,
        rng: &mut DetRng,
    ) -> Vec<FlowSpec>;

    /// For workloads that are memory-less Poisson all-to-all processes:
    /// the size distribution, enabling the O(hosts)-memory streaming path
    /// ([`crate::stream::PoissonStream`]) at millions of flows. `None`
    /// for patterns with cross-flow structure (jobs, bursts, pinned
    /// hotspots) that need the batch generator.
    fn stream_dist(&self) -> Option<FlowSizeDist> {
        None
    }

    /// File-system/JSON-label-safe form of the name: lowercase, with
    /// every run of non-alphanumerics collapsed to one underscore
    /// (`Incast(32:1)` → `incast_32_1`).
    fn slug(&self) -> String {
        let name = self.name();
        let mut out = String::with_capacity(name.len());
        for c in name.chars() {
            if c.is_ascii_alphanumeric() {
                out.push(c.to_ascii_lowercase());
            } else if !out.ends_with('_') {
                out.push('_');
            }
        }
        out.trim_matches('_').to_string()
    }
}

/// Every registered workload with default parameters, in deterministic
/// presentation order: the paper's patterns first, then the extensions.
pub fn registry() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(patterns::websearch()),
        Box::new(patterns::datamining()),
        Box::new(patterns::alltoall()),
        Box::new(patterns::incast(32)),
        Box::new(patterns::zipf_hotspot(1.0)),
        Box::new(patterns::onoff(5.0)),
    ]
}

/// Look a workload up by slug, case-insensitively, with optional
/// parameter: `incast:1000`, `hotspot:1.2`, `onoff:8` (also accepted as
/// `incast(1000)`). Matches the full display name, the base name, the
/// slug, and common underscore aliases (`web_search`, `data_mining`,
/// `all_to_all`, `on_off`). `None` for unknown names or bad parameters —
/// callers should print the registry, like the scheme CLI does.
pub fn find(name: &str) -> Option<Box<dyn Workload>> {
    let want = name.trim().to_ascii_lowercase();
    // Split `base:param` / `base(param)` forms.
    let (base, param) = match want.split_once(':') {
        Some((b, p)) => (b.to_string(), Some(p.trim().to_string())),
        None => match want.split_once('(') {
            Some((b, p)) => (
                b.to_string(),
                Some(p.trim_end_matches(')').trim().to_string()),
            ),
            None => (want.clone(), None),
        },
    };
    // Collapse separators so `web_search` and `web-search` hit `websearch`.
    let canon: String = base.chars().filter(|c| c.is_ascii_alphanumeric()).collect();
    match canon.as_str() {
        "websearch" => param
            .is_none()
            .then(|| Box::new(patterns::websearch()) as _),
        "datamining" => param
            .is_none()
            .then(|| Box::new(patterns::datamining()) as _),
        "alltoall" => param.is_none().then(|| Box::new(patterns::alltoall()) as _),
        "incast" => {
            let fan_in = match param {
                Some(p) => p.parse::<u32>().ok().filter(|&f| f >= 1)?,
                None => 32,
            };
            Some(Box::new(patterns::incast(fan_in)))
        }
        "hotspot" => {
            let skew = match param {
                Some(p) => p
                    .parse::<f64>()
                    .ok()
                    .filter(|s| s.is_finite() && *s >= 0.0)?,
                None => 1.0,
            };
            Some(Box::new(patterns::zipf_hotspot(skew)))
        }
        "onoff" => {
            let burst = match param {
                Some(p) => p
                    .parse::<f64>()
                    .ok()
                    .filter(|b| b.is_finite() && *b >= 1.0)?,
                None => 5.0,
            };
            Some(Box::new(patterns::onoff(burst)))
        }
        // Fall through to exact full-name/slug matches against the
        // registry defaults (`incast_32_1`, `Hotspot(z=1)`, ...).
        _ => registry().into_iter().find(|w| {
            let full = w.name().to_ascii_lowercase();
            want == full || want == w.slug()
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_deterministic_and_named_uniquely() {
        let a = registry();
        let names: Vec<String> = a.iter().map(|w| w.name()).collect();
        let b: Vec<String> = registry().iter().map(|w| w.name()).collect();
        assert_eq!(names, b);
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "names must be unique: {names:?}");
        for w in &a {
            assert!(!w.brief().is_empty(), "{}: brief", w.name());
            assert!(!w.slug().is_empty(), "{}: slug", w.name());
        }
    }

    #[test]
    fn find_matches_slug_alias_and_param_forms() {
        assert_eq!(find("websearch").unwrap().name(), "Websearch");
        assert_eq!(find("web_search").unwrap().name(), "Websearch");
        assert_eq!(find("WebSearch").unwrap().name(), "Websearch");
        assert_eq!(find("data_mining").unwrap().name(), "Datamining");
        assert_eq!(find("all_to_all").unwrap().name(), "AllToAll(1MB)");
        assert_eq!(find("incast").unwrap().name(), "Incast(32:1)");
        assert_eq!(find("incast:1000").unwrap().name(), "Incast(1000:1)");
        assert_eq!(find("incast(64)").unwrap().name(), "Incast(64:1)");
        assert_eq!(find("incast_32_1").unwrap().name(), "Incast(32:1)");
        assert_eq!(find("hotspot").unwrap().name(), "Hotspot(z=1)");
        assert_eq!(find("hotspot:1.5").unwrap().name(), "Hotspot(z=1.5)");
        assert_eq!(find("onoff").unwrap().name(), "OnOff(burst=5)");
        assert_eq!(find("on_off:8").unwrap().name(), "OnOff(burst=8)");
        assert!(find("vl2").is_none());
        assert!(find("incast:zero").is_none(), "bad parameter is an error");
        assert!(find("incast:0").is_none(), "fan-in must be >= 1");
        assert!(find("onoff:0.5").is_none(), "burst must be >= 1");
    }

    #[test]
    fn slugs_are_label_safe_and_roundtrip_through_find() {
        for w in registry() {
            let slug = w.slug();
            assert!(
                slug.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "slug {slug} not label-safe"
            );
            let back = find(&slug).unwrap_or_else(|| panic!("slug {slug} not findable"));
            assert_eq!(back.name(), w.name(), "slug {slug} round-trips");
        }
    }

    #[test]
    fn only_memoryless_all_to_alls_stream() {
        for w in registry() {
            let streams = w.stream_dist().is_some();
            let expect = matches!(
                w.slug().as_str(),
                "websearch" | "datamining" | "alltoall_1mb"
            );
            assert_eq!(streams, expect, "{}", w.name());
        }
    }
}
