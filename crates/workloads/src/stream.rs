//! Streaming flow generation for trace-scale runs.
//!
//! The batch generators materialize a `Vec<FlowSpec>` and sort it — fine
//! at experiment scale, but a million-flow trace costs hundreds of MB and
//! a giant sort before the first flow is usable. [`PoissonStream`]
//! produces the same *kind* of workload (per-source Poisson arrivals,
//! i.i.d. sizes, uniform destinations) as an iterator that yields flows
//! already in arrival order with dense ids, using O(hosts) memory: one
//! RNG and one pending arrival per source, merged through a binary heap.
//!
//! Per-source randomness comes from [`DetRng::split`], so the stream is
//! deterministic in `(seed, host count)` and — unlike the batch path —
//! each source's sequence is independent of every other's, which is what
//! lets a future sharded engine partition sources across workers without
//! replaying the global draw order.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use netsim::{DetRng, FlowSpec, SimTime};
use topology::FatTreeParams;

use crate::dist::FlowSizeDist;
use crate::load;

/// An endless-until-`duration` merged Poisson arrival process over all
/// hosts, yielding [`FlowSpec`]s in nondecreasing start order with dense
/// ids `0..`.
pub struct PoissonStream {
    dist: FlowSizeDist,
    n: u32,
    mean_gap_secs: f64,
    duration: SimTime,
    /// Next pending arrival per source, merged smallest-first. Keyed
    /// `(time, src)` so ties break exactly like the batch sort.
    heap: BinaryHeap<Reverse<(SimTime, u32)>>,
    rngs: Vec<DetRng>,
    next_id: u32,
}

impl PoissonStream {
    /// A stream over `p`'s hosts at pod-uplink utilization `load`, flow
    /// sizes from `dist`, arrivals in `[0, duration)`. `base` seeds one
    /// independent per-source RNG via [`DetRng::split`].
    pub fn new(
        p: &FatTreeParams,
        load: f64,
        duration: SimTime,
        dist: FlowSizeDist,
        base: &DetRng,
    ) -> Self {
        dist.validate();
        let n = p.n_hosts() as u32;
        assert!(n >= 2);
        let rate = load::fat_tree_flow_rate_per_host(p, load, dist.mean_bytes());
        let mean_gap_secs = 1.0 / rate;
        let mut rngs: Vec<DetRng> = (0..n).map(|src| base.split(src as u64)).collect();
        let mut heap = BinaryHeap::with_capacity(n as usize);
        for src in 0..n {
            let t = SimTime::from_secs_f64(rngs[src as usize].gen_exp(mean_gap_secs));
            if t < duration {
                heap.push(Reverse((t, src)));
            }
        }
        PoissonStream {
            dist,
            n,
            mean_gap_secs,
            duration,
            heap,
            rngs,
            next_id: 0,
        }
    }

    /// Flows yielded so far.
    pub fn emitted(&self) -> u32 {
        self.next_id
    }

    /// A stream restricted to the sources accepted by `filter` — what one
    /// worker of a sharded run generates locally. Per-source RNG splits
    /// make the subsequence *identical* to the full stream's flows from
    /// those sources (no cross-source draws to replay), so shards can feed
    /// themselves without any generation coordination.
    ///
    /// Flow ids are renumbered densely over the emitted subset; a caller
    /// that needs globally consistent ids (e.g. to compare per-flow
    /// records across shard counts) should generate the full stream and
    /// filter it instead.
    pub fn for_sources(
        p: &FatTreeParams,
        load: f64,
        duration: SimTime,
        dist: FlowSizeDist,
        base: &DetRng,
        filter: impl Fn(u32) -> bool,
    ) -> Self {
        let mut stream = Self::new(p, load, duration, dist, base);
        stream.heap.retain(|&Reverse((_, src))| filter(src));
        stream
    }
}

impl Iterator for PoissonStream {
    type Item = FlowSpec;

    fn next(&mut self) -> Option<FlowSpec> {
        let Reverse((t, src)) = self.heap.pop()?;
        let rng = &mut self.rngs[src as usize];
        let mut dst = rng.gen_range(self.n - 1);
        if dst >= src {
            dst += 1;
        }
        let bytes = self.dist.sample(rng);
        let succ = t + SimTime::from_secs_f64(rng.gen_exp(self.mean_gap_secs));
        if succ < self.duration {
            self.heap.push(Reverse((succ, src)));
        }
        let id = self.next_id;
        self.next_id += 1;
        Some(FlowSpec::tcp(id, src, dst, bytes, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> DetRng {
        DetRng::new(0x57AE, 0)
    }

    #[test]
    fn stream_is_sorted_dense_and_deterministic() {
        let p = FatTreeParams::paper();
        let mk = || {
            PoissonStream::new(
                &p,
                0.3,
                SimTime::from_ms(50),
                FlowSizeDist::web_search(),
                &base(),
            )
            .map(|s| (s.id, s.src, s.dst, s.bytes, s.start))
            .collect::<Vec<_>>()
        };
        let a = mk();
        assert_eq!(a, mk(), "same seed, same stream");
        assert!(!a.is_empty());
        for (i, s) in a.iter().enumerate() {
            assert_eq!(s.0 as usize, i, "dense ids");
            assert_ne!(s.1, s.2, "no self-sends");
            assert!(s.4 < SimTime::from_ms(50));
            if i > 0 {
                assert!(a[i - 1].4 <= s.4, "arrival-sorted");
            }
        }
    }

    #[test]
    fn stream_hits_target_load() {
        let p = FatTreeParams::paper();
        let dur = SimTime::from_ms(500);
        let stream = PoissonStream::new(&p, 0.4, dur, FlowSizeDist::Fixed(1_000_000), &base());
        let offered: f64 = stream.map(|s| s.bytes as f64 * 8.0).sum();
        let expect = load::fat_tree_offered_bps(&p, 0.4) * dur.as_secs_f64();
        let rel = (offered - expect).abs() / expect;
        assert!(rel < 0.05, "offered {offered:.3e} vs expected {expect:.3e}");
    }

    #[test]
    fn memory_is_per_host_not_per_flow() {
        // The struct holds one RNG + one heap slot per host; generating
        // 10x more flows (longer duration) allocates nothing extra.
        let p = FatTreeParams::paper();
        let short: Vec<_> = PoissonStream::new(
            &p,
            0.3,
            SimTime::from_ms(20),
            FlowSizeDist::Fixed(1_000_000),
            &base(),
        )
        .collect();
        let mut long = PoissonStream::new(
            &p,
            0.3,
            SimTime::from_ms(200),
            FlowSizeDist::Fixed(1_000_000),
            &base(),
        );
        assert!(long.heap.capacity() <= 2 * p.n_hosts());
        let n_long = long.by_ref().count();
        assert!(n_long > 5 * short.len());
        assert!(long.heap.capacity() <= 2 * p.n_hosts(), "heap never grew");
    }

    #[test]
    fn for_sources_equals_the_filtered_full_stream() {
        // The sharded-engine feeding property: a worker generating only
        // its own pod's sources gets byte-for-byte the flows the full
        // stream attributes to those sources — same arrival times, sizes,
        // and destinations, in the same relative order.
        let p = FatTreeParams::paper();
        let dur = SimTime::from_ms(50);
        let dist = FlowSizeDist::web_search;
        let hosts_per_pod = (p.tors_per_pod * p.hosts_per_tor) as u32;
        let owns = |pod: u32| move |src: u32| src / hosts_per_pod == pod;
        let full: Vec<_> = PoissonStream::new(&p, 0.3, dur, dist(), &base())
            .map(|s| (s.src, s.dst, s.bytes, s.start))
            .collect();
        let mut union = 0usize;
        for pod in 0..p.pods as u32 {
            let local: Vec<_> =
                PoissonStream::for_sources(&p, 0.3, dur, dist(), &base(), owns(pod))
                    .map(|s| (s.src, s.dst, s.bytes, s.start))
                    .collect();
            let filtered: Vec<_> = full
                .iter()
                .copied()
                .filter(|&(src, ..)| owns(pod)(src))
                .collect();
            assert_eq!(local, filtered, "pod {pod}");
            union += local.len();
        }
        assert_eq!(union, full.len(), "pods partition the stream");
    }

    #[test]
    fn per_source_sequences_are_split_independent() {
        // Dropping a source's flows does not perturb any other source's:
        // the defining property for future sharding.
        let p = FatTreeParams::paper();
        let all: Vec<_> = PoissonStream::new(
            &p,
            0.3,
            SimTime::from_ms(50),
            FlowSizeDist::web_search(),
            &base(),
        )
        .collect();
        // Regenerate and compare each source's subsequence by key fields.
        let again: Vec<_> = PoissonStream::new(
            &p,
            0.3,
            SimTime::from_ms(50),
            FlowSizeDist::web_search(),
            &base(),
        )
        .collect();
        for src in [0u32, 7, 127] {
            let sub = |v: &[FlowSpec]| {
                v.iter()
                    .filter(|s| s.src == src)
                    .map(|s| (s.dst, s.bytes, s.start))
                    .collect::<Vec<_>>()
            };
            assert_eq!(sub(&all), sub(&again));
            assert!(!sub(&all).is_empty(), "src {src} sent something");
        }
    }
}
