//! Property tests over the whole workload registry: every registered
//! workload, at every probed seed, must generate byte-identical flow
//! lists across two runs and keep flow ids dense and arrival-sorted.
//! These are the invariants downstream consumers (agent installation,
//! the flight recorder, sharding) silently rely on.

use netsim::{DetRng, FlowSpec, SimTime};
use topology::FatTreeParams;
use workloads::{registry, PoissonStream};

/// A few milliseconds keeps per-case flow counts in the tens-to-hundreds
/// — enough to exercise every code path (datamining's ~5 MB mean size
/// makes its arrival rate ~10x sparser than websearch's) without making
/// the product of (workloads x seeds) slow.
const DURATION: SimTime = SimTime::from_ms(5);
const LOAD: f64 = 0.4;
const SEEDS: [u64; 5] = [0, 1, 42, 0xDEAD_BEEF, u64::MAX];

fn key(s: &FlowSpec) -> (u32, u32, u32, u64, SimTime, Option<u32>) {
    (s.id, s.src, s.dst, s.bytes, s.start, s.job)
}

#[test]
fn every_workload_is_deterministic_at_every_seed() {
    let p = FatTreeParams::paper();
    for w in registry() {
        for seed in SEEDS {
            let run = || {
                let mut rng = DetRng::new(seed, 0x3017);
                w.generate(&p, LOAD, DURATION, &mut rng)
                    .iter()
                    .map(key)
                    .collect::<Vec<_>>()
            };
            assert_eq!(
                run(),
                run(),
                "{} not byte-identical at seed {seed}",
                w.name()
            );
        }
    }
}

#[test]
fn every_workload_yields_dense_sorted_ids_and_sane_flows() {
    let p = FatTreeParams::paper();
    let n = p.n_hosts() as u32;
    for w in registry() {
        for seed in SEEDS {
            let mut rng = DetRng::new(seed, 0x3017);
            let specs = w.generate(&p, LOAD, DURATION, &mut rng);
            assert!(
                !specs.is_empty(),
                "{} generated nothing at seed {seed}",
                w.name()
            );
            for (i, s) in specs.iter().enumerate() {
                assert_eq!(s.id as usize, i, "{}: ids dense+sorted", w.name());
                assert!(s.src < n && s.dst < n, "{}: hosts in range", w.name());
                assert_ne!(s.src, s.dst, "{}: no self-sends", w.name());
                assert!(s.bytes > 0, "{}: empty flow", w.name());
            }
            // Arrival-sorted within TCP flows (UDP pins may start at 0).
            let starts: Vec<_> = specs.iter().map(|s| s.start).collect();
            assert!(
                starts.windows(2).all(|w2| w2[0] <= w2[1]),
                "{}: starts sorted at seed {seed}",
                w.name()
            );
        }
    }
}

#[test]
fn different_seeds_actually_change_the_traffic() {
    // Guards against a registry entry accidentally ignoring its RNG.
    let p = FatTreeParams::paper();
    for w in registry() {
        let gen_with = |seed: u64| {
            let mut rng = DetRng::new(seed, 0x3017);
            w.generate(&p, LOAD, DURATION, &mut rng)
                .iter()
                .map(key)
                .collect::<Vec<_>>()
        };
        assert_ne!(
            gen_with(1),
            gen_with(2),
            "{} ignores its seed entirely",
            w.name()
        );
    }
}

#[test]
fn streaming_path_matches_streaming_path_not_batch() {
    // The streamable workloads advertise a dist; the stream built from it
    // must itself be deterministic and well-formed (it intentionally uses
    // a different RNG interleave than the batch path, so batch-vs-stream
    // equality is NOT expected — determinism of each path is).
    let p = FatTreeParams::paper();
    for w in registry() {
        let Some(dist) = w.stream_dist() else {
            continue;
        };
        let mk = || {
            PoissonStream::new(&p, LOAD, DURATION, dist.clone(), &DetRng::new(7, 0x57AE))
                .map(|s| key(&s))
                .collect::<Vec<_>>()
        };
        let a = mk();
        assert_eq!(a, mk(), "{}: stream deterministic", w.name());
        assert!(!a.is_empty(), "{}: stream produced flows", w.name());
        for (i, s) in a.iter().enumerate() {
            assert_eq!(s.0 as usize, i, "{}: stream ids dense", w.name());
        }
    }
}
