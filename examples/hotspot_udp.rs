//! UDP hotspot decongestion (paper §4.3.1): a rate-limited 6 Gbps UDP
//! flow is pinned by its static hash to one of the 4 paths between two
//! ToRs while a 14 Gbps TCP shuffle shares the same path set.
//!
//! Ideal behaviour: the 14 Gbps of TCP squeezes onto the three clean paths
//! (14/3 < 10 - plenty) and leaves the UDP path alone. ECMP can't do that
//! — it keeps hashing ~a quarter of the TCP onto the hotspot. FlowBender
//! senses the marks and bends away.
//!
//! ```text
//! cargo run --release --example hotspot_udp
//! ```

use experiments::{hotspot, report::Opts, schemes};

fn main() {
    let opts = Opts {
        scale: 1.0,
        seed: 4,
        ..Opts::default()
    };
    println!("14 Gbps TCP shuffle + 6 Gbps UDP pinned to one of 4 ToR-to-ToR paths\n");
    let loads = hotspot::sweep(
        &opts,
        &[
            schemes::ecmp(),
            schemes::flowbender(flowbender::Config::default()),
        ],
    );
    for pl in &loads {
        let hot = pl.hotspot_path();
        println!("{}:", pl.scheme);
        for (i, (&t, &u)) in pl.tcp_gbps.iter().zip(&pl.udp_gbps).enumerate() {
            println!(
                "  path {i}{}  TCP {t:5.2} Gbps   UDP {u:5.2} Gbps   total {:5.2} Gbps",
                if i == hot { " (U)" } else { "    " },
                t + u
            );
        }
        println!(
            "  -> TCP riding on the hotspot: {:.2} Gbps\n",
            pl.tcp_on_hotspot()
        );
    }
    println!("paper: ECMP leaves ~3.5 Gbps of TCP on U; FlowBender ~1.5 Gbps.");
}
