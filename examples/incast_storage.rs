//! Storage-style incast: partition-aggregate jobs (the paper's §4.2.4
//! motivation — "storage-type workloads which generate incast").
//!
//! A client host fans a 1 MB read out to `n` storage servers; all respond
//! at once; the job completes when the **last** response arrives. This
//! example sweeps the fan-in degree and compares average job completion
//! time under ECMP and FlowBender, showing where multipathing helps (the
//! fabric) and where it cannot (the client's own last-hop link).
//!
//! ```text
//! cargo run --release --example incast_storage
//! ```

use flowbender::Config;
use netsim::{DetRng, SimTime};
use stats::avg_job_completion;
use topology::FatTreeParams;
use transport::TcpConfig;
use workloads::partition_aggregate;

fn run(fan_in: u32, tcp: &TcpConfig, seed: u64) -> (f64, usize) {
    let params = FatTreeParams::paper();
    let duration = SimTime::from_ms(20);
    let mut rng = DetRng::new(seed, fan_in as u64);
    let specs = partition_aggregate(&params, 0.4, fan_in, 1_000_000, duration, &mut rng);

    let mut sim = netsim::Simulator::new(seed);
    let scheme_cfg = netsim::SwitchConfig::commodity(netsim::HashConfig::FiveTupleAndVField);
    topology::build_fat_tree(&mut sim, params, scheme_cfg);
    transport::install_agents(&mut sim, &specs, tcp);
    sim.run_until(duration + SimTime::from_ms(300));
    avg_job_completion(sim.recorder().flows())
}

fn main() {
    println!("partition-aggregate: 1MB jobs at 40% load on the paper fat-tree\n");
    println!("fan-in  ECMP avg JCT   FlowBender avg JCT   ratio   jobs");
    println!("------------------------------------------------------------");
    for fan_in in [4u32, 8, 16, 32] {
        let (ecmp, jobs) = run(fan_in, &TcpConfig::default(), 7);
        let (fb, _) = run(fan_in, &TcpConfig::flowbender(Config::default()), 7);
        println!(
            "{fan_in:6}  {:10.3} ms  {:15.3} ms  {:6.2}  {jobs:5}",
            ecmp * 1e3,
            fb * 1e3,
            fb / ecmp
        );
    }
    println!("\nThe aggregator's own last-hop link serializes every job, and no");
    println!("load balancer can widen it. In this lossless, deep-buffered");
    println!("substrate that bottleneck dominates, so FlowBender sits within a");
    println!("few percent of ECMP here; its fabric-side wins show up in the");
    println!("all-to-all and microbenchmark examples instead (the paper's");
    println!("drop-prone testbed saw larger incast gains — see EXPERIMENTS.md).");
}
