//! Link-failure recovery: the paper's §3.3.2 claim that FlowBender routes
//! around a broken path "essentially within an RTO", orders of magnitude
//! faster than routing reconvergence.
//!
//! We run 16 cross-pod flows, kill one agg→core link mid-transfer, and
//! watch what happens under ECMP (flows hashed onto the dead link
//! black-hole forever — routing never reconverges in this run, as in a
//! real datacenter for O(seconds)) versus FlowBender (an RTO fires, the
//! sender re-hashes, the flow finishes).
//!
//! ```text
//! cargo run --release --example link_failure_recovery
//! ```

use flowbender::Config;
use netsim::{Counter, SimTime, Simulator};
use topology::{build_fat_tree, FatTreeParams};
use transport::{install_agents, TcpConfig};
use workloads::microbench;

fn run(label: &str, tcp: TcpConfig) {
    let params = FatTreeParams::paper();
    let mut sim = Simulator::new(99);
    let ft = build_fat_tree(
        &mut sim,
        params,
        netsim::SwitchConfig::commodity(netsim::HashConfig::FiveTupleAndVField),
    );
    // 16 x 5MB flows, ToR0/pod0 -> ToR0/pod1.
    let specs = microbench(&params, 16, 5_000_000);
    install_agents(&mut sim, &specs, &tcp);
    // At t = 2ms, agg0 of pod0 loses its first core uplink.
    let (node, port) = ft.agg_core_link(0, 0);
    sim.schedule_link_state(node, port, false, SimTime::from_ms(2));
    sim.run_until(SimTime::from_secs(30));

    let rec = sim.recorder();
    let fcts: Vec<f64> = rec
        .flows()
        .iter()
        .filter_map(|f| f.fct())
        .map(|t| t.as_secs_f64())
        .collect();
    let worst = fcts.iter().cloned().fold(0.0, f64::max);
    println!(
        "{label:12} completed {:2}/16   timeouts {:3}   timeout-reroutes {:3}   worst FCT {}",
        fcts.len(),
        rec.get(Counter::Timeouts),
        rec.get(Counter::TimeoutReroutes),
        if fcts.len() == 16 {
            format!("{:.1} ms", worst * 1e3)
        } else {
            "stuck".into()
        },
    );
}

fn main() {
    println!("one agg->core link dies at t=2ms under 16 cross-pod flows:\n");
    run("ECMP", TcpConfig::default());
    run("FlowBender", TcpConfig::flowbender(Config::default()));
    println!("\nECMP flows whose hash lands on the dead link retransmit into a");
    println!("black hole forever. FlowBender treats the RTO as a failure signal");
    println!("and picks a new V: typically one RTO_min (10ms) to recover; an");
    println!("unlucky flow may re-roll onto the dead path a few times (the");
    println!("paper: 'a couple of attempts before things are straightened out'),");
    println!("but statistical drift always wins — unlike ECMP, which never does.");
}
