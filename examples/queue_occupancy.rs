//! Queue-occupancy trace: watch DCTCP hold a congested switch queue near
//! the marking threshold K — the property FlowBender's congestion signal
//! (the fraction of marked ACKs) is built on.
//!
//! Four senders share one 10 Gbps downlink. The ASCII strip chart shows
//! the queue hovering around K = 90 KB instead of filling the 2 MB buffer.
//!
//! ```text
//! cargo run --release --example queue_occupancy
//! ```

use netsim::{FlowSpec, HashConfig, LinkSpec, RoutingTable, SimTime, Simulator, SwitchConfig};
use transport::{install_agents, TcpConfig};

fn main() {
    let mut sim = Simulator::new(5);
    let senders: Vec<_> = (0..4).map(|_| sim.add_host_default()).collect();
    let rx = sim.add_host_default();
    let sw = sim.add_switch(SwitchConfig::commodity(HashConfig::FiveTupleAndVField));
    for &s in &senders {
        sim.connect(s, sw, LinkSpec::host_10g());
    }
    let (_, _) = sim.connect(rx, sw, LinkSpec::host_10g());
    let mut rt = RoutingTable::new(5);
    for i in 0..4 {
        rt.set(i, vec![i as u16]);
    }
    rt.set(4, vec![4]);
    sim.set_routes(sw, rt);

    // Four long flows into host 4; the switch's port 4 is the bottleneck.
    let specs: Vec<FlowSpec> = (0..4)
        .map(|i| FlowSpec::tcp(i, i, 4, 20_000_000, SimTime::ZERO))
        .collect();
    install_agents(&mut sim, &specs, &TcpConfig::default());

    // Sample the bottleneck queue every 100 us for 60 ms.
    let watcher = sim.watch_queue(sw, 4, SimTime::from_us(100), SimTime::from_ms(60));
    sim.run_until(SimTime::from_ms(80));

    let samples = sim.queue_samples(watcher);
    let k = 90_000u64;
    let max = samples.iter().map(|&(_, b)| b).max().unwrap_or(0).max(k);
    println!("bottleneck queue occupancy, 4-way DCTCP share of one 10G link");
    println!("K = 90KB marking threshold; buffer = 2MB; '*' = sample, '|' = K\n");
    // Render every 20th sample as one row of a horizontal strip chart.
    for chunk in samples.chunks(20) {
        let (t, b) = chunk[chunk.len() / 2];
        let width = 60usize;
        let pos = (b as usize * width) / max as usize;
        let kpos = (k as usize * width) / max as usize;
        let mut row: Vec<char> = vec![' '; width + 1];
        row[kpos.min(width)] = '|';
        row[pos.min(width)] = '*';
        let line: String = row.into_iter().collect();
        println!("{:>8.2}ms {:>7}B {}", t.as_ms_f64(), b, line);
    }
    let mean = samples.iter().map(|&(_, b)| b as f64).sum::<f64>() / samples.len() as f64;
    println!(
        "\nmean occupancy {:.0}B vs K = {}B — DCTCP parks the queue at the",
        mean, k
    );
    println!("threshold, which is what makes the marked-ACK fraction a prompt,");
    println!("proportional congestion signal for FlowBender to act on.");
}
