//! Quickstart: build a small fat-tree, run colliding flows under plain
//! ECMP and under FlowBender, and print what changed.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use flowbender::Config;
use netsim::{Counter, FlowSpec, SimTime, Simulator};
use topology::{build_fat_tree, FatTreeParams};
use transport::{install_agents, TcpConfig};

fn run(label: &str, tcp: TcpConfig) {
    // A 2-pod, 16-host fat-tree with commodity ECMP switches whose hash
    // covers the FlowBender V-field (inert unless hosts use it).
    let mut sim = Simulator::new(42);
    let params = FatTreeParams::tiny();
    let ft = build_fat_tree(
        &mut sim,
        params,
        netsim::SwitchConfig::commodity(netsim::HashConfig::FiveTupleAndVField),
    );

    // Eight 10 MB flows from pod-0 hosts to pod-1 hosts, all at t=0.
    // Static hashing will collide some of them onto the same core links.
    let pod1 = ft.hosts_of_tor(params.tors_per_pod).start as u32; // first host of pod 1
    let specs: Vec<FlowSpec> = (0..8)
        .map(|i| FlowSpec::tcp(i, i % 8, pod1 + (i % 8), 10_000_000, SimTime::ZERO))
        .collect();

    // Attach the DCTCP (+ optional FlowBender) stack to every host and run.
    install_agents(&mut sim, &specs, &tcp);
    sim.run_until(SimTime::from_secs(30));

    let rec = sim.recorder();
    let fcts: Vec<f64> = rec
        .flows()
        .iter()
        .filter_map(|f| f.fct())
        .map(|t| t.as_secs_f64())
        .collect();
    let mean = fcts.iter().sum::<f64>() / fcts.len() as f64;
    let max = fcts.iter().cloned().fold(0.0, f64::max);
    println!(
        "{label:12} completed {}/8  mean FCT {:6.2} ms  worst {:6.2} ms  reroutes {:3}  ooo pkts {}",
        fcts.len(),
        mean * 1e3,
        max * 1e3,
        rec.get(Counter::Reroutes),
        rec.get(Counter::OooPktsRcvd),
    );
}

fn main() {
    println!("8 x 10MB cross-pod flows on a tiny fat-tree (4 inter-pod paths):\n");
    run("ECMP", TcpConfig::default());
    run("FlowBender", TcpConfig::flowbender(Config::default()));
    println!("\nFlowBender senders re-hash congested flows onto new paths (the");
    println!("reroute count) at the price of a small amount of reordering, and");
    println!("the worst flow finishes far closer to the mean.");
}
