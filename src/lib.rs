//! # flowbender-suite — the FlowBender (CoNEXT'14) reproduction, in one place
//!
//! This facade crate re-exports the whole workspace so downstream users can
//! depend on a single crate:
//!
//! * [`flowbender`] — the paper's contribution: the per-flow adaptive
//!   rerouting state machine (`F`/`T`/`N`/`V`), transport-agnostic;
//! * [`netsim`] — the deterministic packet-level datacenter simulator
//!   (links, ECN queues, ECMP/RPS/DeTail switches, PFC, failures);
//! * [`topology`] — the paper's fat-tree and testbed fabrics;
//! * [`transport`] — TCP New Reno + DCTCP + UDP endpoints, with FlowBender
//!   attached per flow when configured;
//! * [`workloads`] — the paper's traffic generators (all-to-all,
//!   partition-aggregate, microbenchmarks, hotspots);
//! * [`stats`] — FCT reduction, percentiles, size bins, table rendering;
//! * [`experiments`] — one harness per paper table/figure.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! `experiments` binary for the paper reproduction harness.

#![forbid(unsafe_code)]

pub use experiments;
pub use flowbender;
pub use netsim;
pub use stats;
pub use topology;
pub use transport;
pub use workloads;
