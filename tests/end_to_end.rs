//! Workspace-level integration tests: the full stack (topology + transport
//! + workloads + stats) exercised end-to-end on paper-shaped scenarios.

use flowbender::Config as FbConfig;
use netsim::{Counter, DetRng, FlowSpec, SimTime, Simulator};
use topology::{build_fat_tree, build_testbed, FatTreeParams, TestbedParams};
use transport::{install_agents, TcpConfig};
use workloads::{all_to_all, microbench, FlowSizeDist};

/// Helper: run an all-to-all workload on the tiny fat-tree under a scheme.
fn tiny_all_to_all(scheme: &experiments::SchemeSpec, seed: u64) -> netsim::Recorder {
    let params = FatTreeParams::tiny();
    let mut rng = DetRng::new(seed, 1);
    let dist = FlowSizeDist::web_search();
    let specs = all_to_all(&params, 0.4, SimTime::from_ms(20), &dist, &mut rng);
    let mut sim = Simulator::new(seed);
    build_fat_tree(&mut sim, params, scheme.switch_config());
    install_agents(&mut sim, &specs, &scheme.tcp_config());
    sim.run_until(SimTime::from_secs(10));
    sim.into_recorder()
}

#[test]
fn all_schemes_complete_all_to_all_traffic() {
    for scheme in experiments::schemes::paper_set() {
        let rec = tiny_all_to_all(&scheme, 3);
        let total = rec.flows().len();
        let done = rec.completed_count();
        assert!(total > 50, "workload too small: {total}");
        assert_eq!(done, total, "{}: {done}/{total} completed", scheme.name());
    }
}

#[test]
fn conservation_data_packets_received_cover_flow_bytes() {
    // Every byte of every flow must arrive at least once: the sum of flow
    // sizes bounds the unique data delivered; received packets * MSS must
    // cover it (retransmits can only add).
    let rec = tiny_all_to_all(&experiments::schemes::ecmp(), 5);
    let total_bytes: u64 = rec.flows().iter().map(|f| f.bytes).sum();
    let delivered_capacity = rec.get(Counter::DataPktsRcvd) * netsim::MSS as u64;
    assert!(
        delivered_capacity >= total_bytes,
        "delivered {delivered_capacity} < offered {total_bytes}"
    );
}

#[test]
fn ecmp_never_reorders_or_reroutes() {
    let rec = tiny_all_to_all(&experiments::schemes::ecmp(), 7);
    assert_eq!(
        rec.get(Counter::OooPktsRcvd),
        0,
        "static hashing cannot reorder"
    );
    assert_eq!(rec.get(Counter::Reroutes), 0);
    assert_eq!(rec.get(Counter::TimeoutReroutes), 0);
}

#[test]
fn reordering_ranks_match_the_paper() {
    // FlowBender reorders a little; RPS and DeTail reorder a lot.
    let fb = tiny_all_to_all(&experiments::schemes::flowbender(FbConfig::default()), 7);
    let rps = tiny_all_to_all(&experiments::schemes::rps(), 7);
    let detail = tiny_all_to_all(&experiments::schemes::detail(), 7);
    let frac = |r: &netsim::Recorder| {
        r.get(Counter::OooPktsRcvd) as f64 / r.get(Counter::DataPktsRcvd).max(1) as f64
    };
    let (f, p, d) = (frac(&fb), frac(&rps), frac(&detail));
    assert!(
        f > 0.0,
        "FlowBender should reroute (and thus reorder) a little"
    );
    assert!(
        p > 3.0 * f,
        "RPS ({p:.4}) should reorder much more than FlowBender ({f:.4})"
    );
    assert!(
        d > 3.0 * f,
        "DeTail ({d:.4}) should reorder much more than FlowBender ({f:.4})"
    );
}

#[test]
fn full_paper_fat_tree_microbenchmark_runs_deterministically() {
    let run = || {
        let params = FatTreeParams::paper();
        let mut sim = Simulator::new(11);
        build_fat_tree(
            &mut sim,
            params,
            netsim::SwitchConfig::commodity(netsim::HashConfig::FiveTupleAndVField),
        );
        let specs = microbench(&params, 16, 2_000_000);
        install_agents(
            &mut sim,
            &specs,
            &TcpConfig::flowbender(FbConfig::default()),
        );
        sim.run_until(SimTime::from_secs(10));
        let ends: Vec<_> = sim.recorder().flows().iter().map(|f| f.end).collect();
        (ends, sim.events_processed())
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must reproduce bit-for-bit");
    assert!(a.1 > 100_000, "expected a substantial event count");
}

#[test]
fn different_seeds_change_microscopic_but_not_macroscopic_outcomes() {
    let fcts = |seed: u64| {
        let rec = tiny_all_to_all(&experiments::schemes::flowbender(FbConfig::default()), seed);
        let v: Vec<f64> = rec
            .flows()
            .iter()
            .filter_map(|f| f.fct())
            .map(|t| t.as_secs_f64())
            .collect();
        v
    };
    let a = fcts(100);
    let b = fcts(101);
    // Different seed, same workload model: means within 3x of each other,
    // but not the identical trajectory.
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert_ne!(a, b);
    let (ma, mb) = (mean(&a), mean(&b));
    assert!(
        ma / mb < 3.0 && mb / ma < 3.0,
        "means diverged: {ma} vs {mb}"
    );
}

#[test]
fn testbed_and_fat_tree_share_transport_behaviour() {
    // The same flow spec on the two fabrics completes in comparable time
    // (both provide a 10G path with similar delay structure).
    let fct_on = |is_testbed: bool| {
        let mut sim = Simulator::new(13);
        let specs = vec![FlowSpec::tcp(0, 0, 60, 2_000_000, SimTime::ZERO)];
        if is_testbed {
            build_testbed(
                &mut sim,
                TestbedParams::paper(),
                netsim::SwitchConfig::commodity(netsim::HashConfig::FiveTupleAndVField),
            );
        } else {
            build_fat_tree(
                &mut sim,
                FatTreeParams::paper(),
                netsim::SwitchConfig::commodity(netsim::HashConfig::FiveTupleAndVField),
            );
        }
        install_agents(&mut sim, &specs, &TcpConfig::default());
        sim.run_until(SimTime::from_secs(5));
        sim.recorder().flows()[0]
            .fct()
            .expect("flow completes")
            .as_secs_f64()
    };
    let tb = fct_on(true);
    let ft = fct_on(false);
    assert!(
        (tb / ft) < 1.5 && (ft / tb) < 1.5,
        "testbed {tb} vs fat-tree {ft}"
    );
}

#[test]
fn flowbender_with_two_v_options_still_effective() {
    // Footnote 2 of the paper: even V range 2 works. 8 colliding flows on
    // the tiny fabric must finish no slower than ECMP's worst flow.
    let params = FatTreeParams::tiny();
    let mk = |cfg: TcpConfig| {
        let mut sim = Simulator::new(21);
        build_fat_tree(
            &mut sim,
            params,
            netsim::SwitchConfig::commodity(netsim::HashConfig::FiveTupleAndVField),
        );
        let specs: Vec<FlowSpec> = (0..8)
            .map(|i| FlowSpec::tcp(i, i, 8 + i, 5_000_000, SimTime::ZERO))
            .collect();
        install_agents(&mut sim, &specs, &cfg);
        sim.run_until(SimTime::from_secs(10));
        sim.recorder()
            .flows()
            .iter()
            .filter_map(|f| f.fct())
            .map(|t| t.as_secs_f64())
            .fold(0.0, f64::max)
    };
    let ecmp_worst = mk(TcpConfig::default());
    let fb2_worst = mk(TcpConfig::flowbender(FbConfig::default().with_v_range(2)));
    assert!(
        fb2_worst <= ecmp_worst * 1.05,
        "V-range-2 worst {fb2_worst} vs ECMP worst {ecmp_worst}"
    );
}
